// Observability layer: metrics registry under worker-pool contention,
// wait-event attribution on the simulated clock, recovery-phase spans
// tiling the traced interval, and the snapshot's JSON round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "engine/admin_shell.hpp"
#include "obs/observability.hpp"
#include "tests/test_env.hpp"

namespace vdb {
namespace {

using obs::MetricsSnapshot;
using obs::Observability;
using obs::RecoveryPhase;
using obs::RecoveryTracer;
using obs::WaitEvent;
using obs::WaitScope;

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.counter("user commits");
  obs::Counter* b = reg.counter("user commits");
  EXPECT_EQ(a, b);
  a->inc();
  a->inc(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_NE(static_cast<void*>(reg.gauge("user commits")),
            static_cast<void*>(a));
}

TEST(MetricsRegistry, CountersUnderParallelForContention) {
  obs::MetricsRegistry reg;
  obs::Counter* shared = reg.counter("shared");
  obs::Histogram* hist = reg.histogram("latency");
  constexpr std::size_t kIters = 10'000;
  // Same shape as RedoApplyPlan::apply_run: one pre-resolved instrument,
  // hammered from the worker pool with relaxed atomics.
  parallel_for(kIters, 4, [&](std::size_t i) {
    shared->inc();
    hist->record(i % 97);
    reg.counter("registered concurrently " + std::to_string(i % 7))->inc();
  });
  EXPECT_EQ(shared->value(), kIters);
  EXPECT_EQ(hist->count(), kIters);
  std::uint64_t from_named = 0;
  for (int k = 0; k < 7; ++k) {
    from_named +=
        reg.counter("registered concurrently " + std::to_string(k))->value();
  }
  EXPECT_EQ(from_named, kIters);
}

TEST(MetricsRegistry, HistogramPercentilesAndBounds) {
  obs::Histogram hist;
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 1000u);
  EXPECT_DOUBLE_EQ(hist.mean(), 500.5);
  // Power-of-two buckets: percentiles land on the right bucket boundary.
  EXPECT_GE(hist.percentile(0.99), 512u);
  EXPECT_LE(hist.percentile(0.50), 512u);
}

// --- wait events -----------------------------------------------------------

TEST(WaitEvents, ScopeChargesSimulatedTime) {
  sim::VirtualClock clock;
  obs::WaitEventTable waits;
  {
    WaitScope scope(&waits, &clock, WaitEvent::kLogFileSync);
    clock.advance_by(250);
  }
  {
    WaitScope scope(&waits, &clock, WaitEvent::kLogFileSync);
    clock.advance_by(750);
  }
  {
    // Zero-length wait: not counted (the simulated clock never moved).
    WaitScope scope(&waits, &clock, WaitEvent::kLogFileSync);
  }
  EXPECT_EQ(waits.total_waits(WaitEvent::kLogFileSync), 2u);
  EXPECT_EQ(waits.time_waited(WaitEvent::kLogFileSync), 1000u);
  EXPECT_EQ(waits.max_wait(WaitEvent::kLogFileSync), 750u);
  EXPECT_EQ(waits.total_waits(WaitEvent::kBufferBusy), 0u);
}

TEST(WaitEvents, CommitPathChargesLogFileSync) {
  testing::SimEnv env;
  testing::SmallDb small(env);
  engine::Database& db = *small.db;

  auto txn = db.begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.insert(txn.value(), small.table,
                        testing::row("wait-probe")).is_ok());
  ASSERT_TRUE(db.commit(txn.value()).is_ok());

  const obs::WaitEventTable& waits = db.obs().waits();
  EXPECT_GE(waits.total_waits(WaitEvent::kLogFileSync), 1u);
  EXPECT_GT(waits.time_waited(WaitEvent::kLogFileSync), 0u);
  EXPECT_GE(db.obs().registry().counter("user commits")->value(), 1u);
}

// --- recovery-phase tracer -------------------------------------------------

TEST(RecoveryTracer, SpansTileTheTracedInterval) {
  RecoveryTracer tracer;
  tracer.start("test recovery", 1000);
  tracer.enter(RecoveryPhase::kDetection, 1000);
  tracer.enter(RecoveryPhase::kRestore, 3000);
  tracer.enter(RecoveryPhase::kRedo, 4500);
  tracer.enter(RecoveryPhase::kUndo, 9000);
  tracer.enter(RecoveryPhase::kOpen, 9100);
  tracer.exit(9600);
  tracer.finish(10000);  // tail folded into a resume span

  ASSERT_EQ(tracer.history().size(), 1u);
  const obs::RecoveryTrace& trace = tracer.history().back();
  EXPECT_TRUE(trace.finished);
  EXPECT_EQ(trace.start, 1000u);
  EXPECT_EQ(trace.end, 10000u);
  EXPECT_EQ(trace.total(), trace.end - trace.start);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kDetection), 2000u);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kRestore), 1500u);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kRedo), 4500u);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kUndo), 100u);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kOpen), 500u);
  EXPECT_EQ(trace.phase_time(RecoveryPhase::kResume), 400u);
  // Spans are contiguous: each begins where the previous one ended.
  for (std::size_t i = 1; i < trace.spans.size(); ++i) {
    EXPECT_EQ(trace.spans[i].start, trace.spans[i - 1].end);
  }
}

TEST(RecoveryTracer, CrashRecoverySpansSumToStartupTime) {
  testing::SimEnv env;
  engine::DatabaseConfig cfg = testing::small_db_config();
  Observability stats_area;
  cfg.obs = &stats_area;

  SimTime crash_time = 0;
  {
    testing::SmallDb small(env, cfg);
    engine::Database& db = *small.db;
    for (int i = 0; i < 20; ++i) {
      auto txn = db.begin();
      ASSERT_TRUE(txn.is_ok());
      ASSERT_TRUE(db.insert(txn.value(), small.table,
                            testing::row("r" + std::to_string(i))).is_ok());
      ASSERT_TRUE(db.commit(txn.value()).is_ok());
    }
    ASSERT_TRUE(db.shutdown_abort().is_ok());
    crash_time = env.clock.now();
  }

  engine::Database restarted(&env.host, &env.sched, cfg);
  ASSERT_TRUE(restarted.startup().is_ok());
  const SimTime up_at = env.clock.now();

  // The self-owned startup trace covers exactly [crash, open] and its
  // spans tile it: restore + redo + undo + open == elapsed, to the tick.
  const obs::RecoveryTrace* trace = stats_area.tracer().latest();
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->finished);
  EXPECT_EQ(trace->label, "instance recovery");
  EXPECT_GE(trace->start, crash_time);
  EXPECT_EQ(trace->end, up_at);
  EXPECT_EQ(trace->total(), trace->end - trace->start);
  EXPECT_GT(trace->phase_time(RecoveryPhase::kRestore), 0u);
  EXPECT_GT(trace->phase_time(RecoveryPhase::kRedo), 0u);
  EXPECT_EQ(trace->phase_time(RecoveryPhase::kDetection), 0u);

  EXPECT_GE(stats_area.registry().counter("instance recoveries")->value(),
            1u);
  EXPECT_GT(
      stats_area.registry().counter("recovery records replayed")->value(),
      0u);
}

// --- snapshot + JSON round-trip -------------------------------------------

TEST(MetricsSnapshot, JsonRoundTripIsLossless) {
  sim::VirtualClock clock;
  Observability stats_area;
  stats_area.registry().counter("user commits")->inc(42);
  stats_area.registry().counter("weird \"name\"\n\t\\slash")->inc();
  stats_area.registry().gauge("cache pages")->set(-7);
  obs::Histogram* hist = stats_area.registry().histogram("client response");
  hist->record(10);
  hist->record(1000);
  {
    WaitScope scope(&stats_area.waits(), &clock, WaitEvent::kCheckpointWait);
    clock.advance_by(123);
  }
  RecoveryTracer& tracer = stats_area.tracer();
  tracer.start("media recovery", 500);
  tracer.enter(RecoveryPhase::kRestore, 500);
  tracer.enter(RecoveryPhase::kRedo, 900);
  tracer.finish(1700);
  tracer.start("open trace", 2000);
  tracer.enter(RecoveryPhase::kOpen, 2000);

  const MetricsSnapshot snap = stats_area.snapshot();
  const std::string json = snap.to_json();
  auto parsed = MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value() == snap);
  // Round-tripping the re-serialized form is a fixed point.
  EXPECT_EQ(parsed.value().to_json(), json);

  EXPECT_EQ(snap.counter("user commits"), 42u);
  const obs::WaitEventRow* wait =
      snap.wait(obs::to_string(WaitEvent::kCheckpointWait));
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->time_us, 123u);
  ASSERT_EQ(snap.recovery.size(), 2u);
  EXPECT_TRUE(snap.recovery[0].finished);
  EXPECT_FALSE(snap.recovery[1].finished);
}

TEST(MetricsSnapshot, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(MetricsSnapshot::from_json("").is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json("{").is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json("[]").is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json("{\"counters\": 3}").is_ok());
  const std::string good = Observability{}.snapshot().to_json();
  EXPECT_TRUE(MetricsSnapshot::from_json(good).is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json(good + "trailing").is_ok());
}

// --- V$ views over the admin shell ----------------------------------------

TEST(AdminShellViews, SysstatSystemEventAndRecoveryProgress) {
  testing::SimEnv env;
  testing::SmallDb small(env);
  engine::Database& db = *small.db;
  auto txn = db.begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.insert(txn.value(), small.table,
                        testing::row("view-probe")).is_ok());
  ASSERT_TRUE(db.commit(txn.value()).is_ok());

  engine::AdminShell shell(&db);
  auto sysstat = shell.execute("V$SYSSTAT");
  ASSERT_TRUE(sysstat.is_ok());
  EXPECT_NE(sysstat.value().find("user commits"), std::string::npos);

  auto events = shell.execute("SELECT * FROM V$SYSTEM_EVENT");
  ASSERT_TRUE(events.is_ok());
  EXPECT_NE(events.value().find("log_file_sync"), std::string::npos);

  auto progress = shell.execute("v$recovery_progress");
  ASSERT_TRUE(progress.is_ok());
  EXPECT_NE(progress.value().find("no recovery recorded"),
            std::string::npos);
}

}  // namespace
}  // namespace vdb
