#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "storage/page.hpp"

namespace vdb::storage {
namespace {

TEST(Page, VirginPageIsUnformatted) {
  Page page;
  EXPECT_FALSE(page.formatted());
  EXPECT_TRUE(page.verify_checksum());  // trivially valid
}

TEST(Page, FormatSetsHeader) {
  Page page;
  page.format(TableId{7}, 100);
  EXPECT_TRUE(page.formatted());
  EXPECT_EQ(page.owner(), TableId{7});
  EXPECT_EQ(page.slot_size(), 100);
  EXPECT_EQ(page.used_count(), 0);
  EXPECT_GT(page.capacity(), 0);
  EXPECT_EQ(page.lsn(), 0u);
}

TEST(Page, CapacityFitsInPage) {
  for (std::uint16_t slot_size : {8, 24, 64, 100, 512, 760, 4000}) {
    const auto cap = Page::capacity_for(slot_size);
    const size_t stride = slot_size + 2u;
    EXPECT_LE(Page::kHeaderBase + (cap + 7) / 8 + cap * stride, Page::kSize)
        << "slot_size=" << slot_size;
    // And one more slot would not fit.
    EXPECT_GT(Page::kHeaderBase + (cap + 8) / 8 + (cap + 1) * stride,
              Page::kSize)
        << "slot_size=" << slot_size;
  }
}

TEST(Page, SlotLifecycle) {
  Page page;
  page.format(TableId{1}, 16);
  EXPECT_EQ(page.find_free_slot(), 0);
  const std::vector<std::uint8_t> payload{1, 2, 3};
  page.set_slot(0, payload);
  EXPECT_TRUE(page.slot_used(0));
  EXPECT_EQ(page.used_count(), 1);
  EXPECT_EQ(page.find_free_slot(), 1);

  auto read = page.read_slot(0);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(std::vector<std::uint8_t>(read.value().begin(),
                                      read.value().end()),
            payload);

  page.clear_slot(0);
  EXPECT_FALSE(page.slot_used(0));
  EXPECT_EQ(page.used_count(), 0);
  EXPECT_EQ(page.read_slot(0).code(), ErrorCode::kNotFound);
}

TEST(Page, OverwriteKeepsUsedCount) {
  Page page;
  page.format(TableId{1}, 16);
  page.set_slot(3, std::vector<std::uint8_t>{1});
  page.set_slot(3, std::vector<std::uint8_t>{2, 2});
  EXPECT_EQ(page.used_count(), 1);
  auto read = page.read_slot(3);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().size(), 2u);
}

TEST(Page, FillToCapacity) {
  Page page;
  page.format(TableId{1}, 32);
  const auto cap = page.capacity();
  for (std::uint16_t i = 0; i < cap; ++i) {
    const auto slot = page.find_free_slot();
    ASSERT_NE(slot, Page::kNoSlot);
    page.set_slot(slot, std::vector<std::uint8_t>{static_cast<uint8_t>(i)});
  }
  EXPECT_EQ(page.used_count(), cap);
  EXPECT_EQ(page.find_free_slot(), Page::kNoSlot);
}

TEST(Page, LsnStored) {
  Page page;
  page.format(TableId{1}, 16);
  page.set_lsn(123456789);
  EXPECT_EQ(page.lsn(), 123456789u);
}

TEST(Page, ChecksumDetectsCorruption) {
  Page page;
  page.format(TableId{1}, 16);
  page.set_slot(0, std::vector<std::uint8_t>{42});
  page.update_checksum();
  EXPECT_TRUE(page.verify_checksum());
  // Flip one payload byte.
  page.raw()[Page::kSize - 1] ^= 0xFF;
  EXPECT_FALSE(page.verify_checksum());
}

class PageSlotSweep : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(PageSlotSweep, RandomFillAndVerify) {
  const std::uint16_t slot_size = GetParam();
  Page page;
  page.format(TableId{9}, slot_size);
  Rng rng(slot_size);
  std::vector<std::vector<std::uint8_t>> shadow(page.capacity());

  // Random slot writes/clears, then verify every slot against a shadow.
  for (int op = 0; op < 500; ++op) {
    const auto slot =
        static_cast<std::uint16_t>(rng.uniform(0, page.capacity() - 1));
    if (rng.chance(0.3) && page.slot_used(slot)) {
      page.clear_slot(slot);
      shadow[slot].clear();
    } else {
      std::vector<std::uint8_t> payload(
          static_cast<size_t>(rng.uniform(1, slot_size)));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
      page.set_slot(slot, payload);
      shadow[slot] = payload;
    }
  }
  std::uint16_t used = 0;
  for (std::uint16_t s = 0; s < page.capacity(); ++s) {
    if (shadow[s].empty()) {
      EXPECT_FALSE(page.slot_used(s));
    } else {
      used += 1;
      auto read = page.read_slot(s);
      ASSERT_TRUE(read.is_ok());
      EXPECT_EQ(std::vector<std::uint8_t>(read.value().begin(),
                                          read.value().end()),
                shadow[s]);
    }
  }
  EXPECT_EQ(page.used_count(), used);
  page.update_checksum();
  EXPECT_TRUE(page.verify_checksum());
}

INSTANTIATE_TEST_SUITE_P(SlotSizes, PageSlotSweep,
                         ::testing::Values(8, 24, 48, 96, 176, 384, 760));

}  // namespace
}  // namespace vdb::storage
