// Assorted property/model checks: scheduler ordering against a sorted
// reference, lock-manager behaviour against a reference model, backup-set
// selection, and TPC-C access-path edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "recovery/backup.hpp"
#include "sim/scheduler.hpp"
#include "tests/test_env.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_loader.hpp"
#include "txn/lock_manager.hpp"

namespace vdb {
namespace {

class SchedulerPropertyCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerPropertyCheck, FiresExactlyInTimeThenFifoOrder) {
  Rng rng(GetParam());
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);

  struct Expected {
    SimTime at;
    std::uint64_t seq;
    bool operator<(const Expected& other) const {
      return std::tie(at, seq) < std::tie(other.at, other.seq);
    }
  };
  std::vector<Expected> expected;
  std::vector<std::uint64_t> fired;

  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime at = static_cast<SimTime>(rng.uniform(0, 10000));
    const std::uint64_t id = seq++;
    expected.push_back({at, id});
    sched.schedule_at(at, [&fired, id] { fired.push_back(id); });
  }
  // Cancel a random subset.
  // (Handles must be captured at schedule time; redo with a fresh pass.)
  sched.run_until(10000);

  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(fired.size(), expected.size());
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].seq) << "position " << i;
  }
  EXPECT_EQ(clock.now(), 10000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyCheck,
                         ::testing::Values(3, 17, 98));

TEST(SchedulerPropertyCheck, RandomCancellation) {
  Rng rng(4242);
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);
  std::vector<sim::EventHandle> handles;
  std::vector<bool> cancelled(300, false);
  int fired = 0;
  for (int i = 0; i < 300; ++i) {
    handles.push_back(sched.schedule_at(
        static_cast<SimTime>(rng.uniform(0, 1000)), [&fired] { ++fired; }));
  }
  int expected = 300;
  for (int i = 0; i < 300; ++i) {
    if (rng.chance(0.4)) {
      handles[static_cast<size_t>(i)].cancel();
      cancelled[static_cast<size_t>(i)] = true;
      expected -= 1;
    }
  }
  sched.run_until(1000);
  EXPECT_EQ(fired, expected);
}

/// Lock-manager model check: grants must agree with a simple reference
/// model of 2PL compatibility (S/S compatible, anything with X conflicts,
/// re-entrant by holder, sole-holder upgrades).
TEST(LockModelCheck, AgreesWithReferenceModel) {
  using txn::LockManager;
  using txn::LockMode;
  using txn::LockTarget;
  Rng rng(31337);
  LockManager lm;

  struct ModelEntry {
    bool exclusive = false;
    std::vector<std::uint64_t> holders;
  };
  std::map<int, ModelEntry> model;  // resource index -> holders
  std::vector<std::uint64_t> active{1, 2, 3, 4, 5};

  auto target = [](int r) {
    return LockTarget::for_row(TableId{1},
                               RowId{PageId{FileId{0}, 0},
                                     static_cast<std::uint16_t>(r)});
  };

  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t txn =
        active[static_cast<size_t>(rng.uniform(0, 4))];
    const int resource = static_cast<int>(rng.uniform(0, 20));
    if (rng.chance(0.15)) {
      // Release everything this txn holds.
      lm.release_all(TxnId{txn});
      for (auto& [r, entry] : model) {
        entry.holders.erase(
            std::remove(entry.holders.begin(), entry.holders.end(), txn),
            entry.holders.end());
        if (entry.holders.empty()) entry.exclusive = false;
      }
      continue;
    }
    const LockMode mode =
        rng.chance(0.5) ? LockMode::kShared : LockMode::kExclusive;
    const Status st = lm.acquire(TxnId{txn}, target(resource), mode);

    ModelEntry& entry = model[resource];
    const bool holds = std::find(entry.holders.begin(), entry.holders.end(),
                                 txn) != entry.holders.end();
    bool expect_ok;
    if (entry.holders.empty()) {
      expect_ok = true;
    } else if (holds) {
      // Re-entrant; upgrade allowed only as sole holder.
      expect_ok = mode == LockMode::kShared || entry.exclusive ||
                  entry.holders.size() == 1;
    } else {
      expect_ok = mode == LockMode::kShared && !entry.exclusive;
    }
    EXPECT_EQ(st.is_ok(), expect_ok)
        << "op " << op << " txn " << txn << " resource " << resource;
    if (st.is_ok()) {
      if (!holds) entry.holders.push_back(txn);
      if (mode == LockMode::kExclusive) entry.exclusive = true;
    }
  }
}

TEST(BackupSets, RestorePicksNewestSet) {
  testing::SimEnv env;
  testing::SmallDb db(env, testing::small_db_config(true));
  recovery::BackupManager backups(&env.host.fs(), "/backup");

  testing::put_row(*db.db, db.table, "gen1");
  ASSERT_TRUE(backups.take_backup(*db.db).is_ok());
  const Lsn first = backups.newest()->backup_lsn;

  testing::put_row(*db.db, db.table, "gen2");
  ASSERT_TRUE(backups.take_backup(*db.db).is_ok());
  const Lsn second = backups.newest()->backup_lsn;
  EXPECT_GT(second, first);
  EXPECT_EQ(backups.sets().size(), 2u);

  // restore_all uses the newest set: both rows are in its image.
  auto set = backups.restore_all(env.host.fs());
  ASSERT_TRUE(set.is_ok());
  EXPECT_EQ(set.value().backup_lsn, second);
}

TEST(TpccAccessPaths, OrderLineRangeEdges) {
  testing::SimEnv env;
  engine::DatabaseConfig cfg = testing::small_db_config();
  cfg.storage.cache_pages = 512;
  auto db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db->create().is_ok());
  ASSERT_TRUE(
      db->create_tablespace("TPCC", {{"/data/t1.dbf", 256}}).is_ok());
  auto user = db->create_user("TPCC", false);
  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 20;
  scale.items = 100;
  scale.initial_orders_per_district = 20;
  tpcc::TpccDb tdb(scale);
  ASSERT_TRUE(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
  ASSERT_TRUE(tdb.attach(db.get()).is_ok());
  tpcc::Loader loader(&tdb, 11);
  ASSERT_TRUE(loader.load().is_ok());

  // Empty and degenerate ranges.
  EXPECT_TRUE(tdb.order_lines_range(1, 1, 5, 5).empty());
  EXPECT_TRUE(tdb.order_lines_range(1, 1, 7, 3).empty());
  EXPECT_TRUE(tdb.order_lines(1, 1, 9999).empty());

  // [o, o+1) equals order_lines(o).
  const auto range = tdb.order_lines_range(1, 1, 3, 4);
  const auto exact = tdb.order_lines(1, 1, 3);
  EXPECT_EQ(range, exact);
  EXPECT_FALSE(exact.empty());

  // A wider range is the concatenation of its parts.
  auto wide = tdb.order_lines_range(1, 1, 3, 6);
  auto parts = tdb.order_lines_range(1, 1, 3, 5);
  const auto tail = tdb.order_lines_range(1, 1, 5, 6);
  parts.insert(parts.end(), tail.begin(), tail.end());
  EXPECT_EQ(wide, parts);

  // oldest_new_order returns the minimum pending order id.
  auto oldest = tdb.oldest_new_order(1, 1);
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->first, 15u);  // 30% of 20 undelivered: ids 15..20
}

}  // namespace
}  // namespace vdb
