// Property sweeps: the crash-recovery invariant (committed state is
// exactly reproduced) must hold across the whole recovery-configuration
// space — every redo file size, group count and checkpoint timeout, with
// and without ARCHIVELOG.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "tests/test_env.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::row;
using testing::row_str;

struct SweepParam {
  std::uint64_t file_bytes;
  std::uint32_t groups;
  SimDuration timeout;
  bool archive;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "F" + std::to_string(info.param.file_bytes / 1024) + "K_G" +
         std::to_string(info.param.groups) + "_T" +
         std::to_string(info.param.timeout / kSecond) +
         (info.param.archive ? "_arch" : "_noarch");
}

class RecoveryConfigSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RecoveryConfigSweep, CrashRecoveryReproducesCommittedState) {
  const SweepParam& param = GetParam();
  SimEnv env;
  DatabaseConfig cfg;
  cfg.redo.file_size_bytes = param.file_bytes;
  cfg.redo.groups = param.groups;
  cfg.redo.archive_mode = param.archive;
  cfg.checkpoint_timeout = param.timeout;
  cfg.storage.cache_pages = 128;
  SmallDb db(env, cfg);

  Rng rng(param.file_bytes ^ param.groups);
  std::map<RowId, std::string> committed;
  std::vector<RowId> live;

  for (int t = 0; t < 150; ++t) {
    env.sched.run_due();
    auto txn = db.db->begin();
    ASSERT_TRUE(txn.is_ok());
    auto local = committed;
    auto local_live = live;
    for (int op = 0, ops = static_cast<int>(rng.uniform(1, 8)); op < ops;
         ++op) {
      if (rng.chance(0.6) || local_live.empty()) {
        const std::string value = "v" + std::to_string(t * 100 + op);
        auto rid = db.db->insert(txn.value(), db.table, row(value));
        ASSERT_TRUE(rid.is_ok());
        local[rid.value()] = value;
        local_live.push_back(rid.value());
      } else {
        const size_t pick = static_cast<size_t>(
            rng.uniform(0, static_cast<std::int64_t>(local_live.size()) - 1));
        ASSERT_TRUE(
            db.db->erase(txn.value(), db.table, local_live[pick]).is_ok());
        local.erase(local_live[pick]);
        local_live.erase(local_live.begin() + static_cast<long>(pick));
      }
    }
    if (rng.chance(0.15)) {
      ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());
    } else {
      ASSERT_TRUE(db.db->commit(txn.value()).is_ok());
      committed = std::move(local);
      live = std::move(local_live);
    }
  }

  ASSERT_TRUE(db.db->shutdown_abort().is_ok());
  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());

  std::map<RowId, std::string> recovered;
  ASSERT_TRUE(db2->scan(db2->table_id("accounts").value(),
                        [&](RowId rid, std::span<const std::uint8_t> bytes) {
                          recovered[rid] = row_str(bytes);
                          return true;
                        })
                  .is_ok());
  EXPECT_EQ(recovered, committed);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RecoveryConfigSweep,
    ::testing::Values(
        // Big files: no switch during the run; timeout checkpoints only.
        SweepParam{4u << 20, 3, 10 * kSecond, false},
        SweepParam{4u << 20, 3, 1200 * kSecond, false},
        // Small files: several switches mid-run.
        SweepParam{64u << 10, 2, 10 * kSecond, false},
        SweepParam{64u << 10, 3, 60 * kSecond, false},
        SweepParam{64u << 10, 6, 1200 * kSecond, false},
        // Tiny files: a switch every few transactions.
        SweepParam{16u << 10, 2, 60 * kSecond, false},
        SweepParam{16u << 10, 3, 10 * kSecond, false},
        // ARCHIVELOG variants (archiver interleaves with switches).
        SweepParam{64u << 10, 3, 60 * kSecond, true},
        SweepParam{16u << 10, 2, 10 * kSecond, true},
        SweepParam{16u << 10, 6, 1200 * kSecond, true}),
    param_name);

}  // namespace
}  // namespace vdb::engine
