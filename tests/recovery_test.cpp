#include <gtest/gtest.h>

#include "recovery/backup.hpp"
#include "recovery/recovery_manager.hpp"
#include "tests/test_env.hpp"

namespace vdb::recovery {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::small_db_config;

class RecoveryTest : public ::testing::Test {
 protected:
  SimEnv env_;
  engine::DatabaseConfig cfg_ = small_db_config(/*archive=*/true);
  std::unique_ptr<SmallDb> db_;
  std::unique_ptr<BackupManager> backups_;
  std::unique_ptr<RecoveryManager> rm_;

  void SetUp() override {
    db_ = std::make_unique<SmallDb>(env_, cfg_);
    backups_ = std::make_unique<BackupManager>(&env_.host.fs(), "/backup");
    rm_ = std::make_unique<RecoveryManager>(&env_.host, &env_.sched,
                                            backups_.get());
  }

  engine::Database& db() { return *db_->db; }
  TableId table() { return db_->table; }
};

TEST_F(RecoveryTest, BackupCreatesCopies) {
  put_row(db(), table(), "before-backup");
  auto set = backups_->take_backup(db());
  ASSERT_TRUE(set.is_ok());
  auto newest = backups_->newest();
  ASSERT_TRUE(newest.has_value());
  EXPECT_GT(newest->backup_lsn, 0u);
  ASSERT_EQ(newest->files.size(), 1u);
  EXPECT_TRUE(env_.host.fs().exists(newest->files[0].backup_path));
}

TEST_F(RecoveryTest, BackupCatalogPersists) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  BackupManager fresh(&env_.host.fs(), "/backup");
  ASSERT_TRUE(fresh.load_catalog().is_ok());
  ASSERT_TRUE(fresh.newest().has_value());
  EXPECT_EQ(fresh.newest()->backup_lsn, backups_->newest()->backup_lsn);
}

TEST_F(RecoveryTest, MediaRecoveryAfterDeletedDatafile) {
  put_row(db(), table(), "pre-backup");
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  for (int i = 0; i < 200; ++i) {
    put_row(db(), table(), "post" + std::to_string(i));
  }

  // The operator fault: rm the datafile.
  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db().storage().cache().discard_all();
  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  RowId any{PageId{FileId{0}, 0}, 0};
  EXPECT_FALSE(db().read(txn.value(), table(), any).is_ok());
  ASSERT_TRUE(db().rollback(txn.value()).is_ok());

  auto report = rm_->recover_datafile(db(), FileId{0});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().complete);
  EXPECT_EQ(report.value().files_restored, 1u);

  // Everything committed before the fault is back.
  const auto rows = all_rows(db(), table());
  EXPECT_EQ(rows.size(), 201u);
}

TEST_F(RecoveryTest, MediaRecoveryWithoutArchivesFailsAfterWrap) {
  // NOARCHIVELOG database: once the online logs wrap past the backup, a
  // deleted datafile is unrecoverable by media recovery (paper §5.1).
  SimEnv env2;
  engine::DatabaseConfig cfg = small_db_config(/*archive=*/false);
  cfg.redo.file_size_bytes = 64 * 1024;  // wrap quickly
  SmallDb small(env2, cfg);
  BackupManager backups(&env2.host.fs(), "/backup");
  RecoveryManager rm(&env2.host, &env2.sched, &backups);

  ASSERT_TRUE(backups.take_backup(*small.db).is_ok());
  // Generate enough redo to wrap all three 64 KiB groups.
  for (int i = 0; i < 2000; ++i) {
    put_row(*small.db, small.table, std::string(50, 'x'));
  }
  ASSERT_TRUE(env2.host.fs().remove("/data/users01.dbf").is_ok());
  small.db->storage().cache().discard_all();
  small.db->storage().mark_missing(FileId{0});

  auto report = rm.recover_datafile(*small.db, FileId{0});
  EXPECT_EQ(report.code(), ErrorCode::kUnrecoverable);
}

TEST_F(RecoveryTest, OfflineDatafileRollForward) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  const RowId rid = put_row(db(), table(), "will-survive");
  ASSERT_TRUE(db().alter_datafile_offline(FileId{0}).is_ok());

  auto report = rm_->recover_datafile_online(db(), FileId{0});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  auto txn = db().begin();
  auto back = db().read(txn.value(), table(), rid);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(testing::row_str(back.value()), "will-survive");
  ASSERT_TRUE(db().commit(txn.value()).is_ok());
}

TEST_F(RecoveryTest, PointInTimeRecoveryStopsBeforeDrop) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  for (int i = 0; i < 50; ++i) put_row(db(), table(), "pre" + std::to_string(i));

  // The operator fault: DROP TABLE.
  ASSERT_TRUE(db().drop_table("accounts").is_ok());
  // A little more activity afterwards (other tables would carry on; here
  // nothing else exists, so just crash).
  ASSERT_TRUE(db().shutdown_abort().is_ok());

  auto pit = rm_->point_in_time_recover(
      cfg_, stop_before_drop_table("accounts"));
  ASSERT_TRUE(pit.is_ok()) << pit.status().to_string();
  EXPECT_FALSE(pit.value().report.complete);

  auto table_id = pit.value().db->table_id("accounts");
  ASSERT_TRUE(table_id.is_ok());  // the table exists again!
  const auto rows = all_rows(*pit.value().db, table_id.value());
  EXPECT_EQ(rows.size(), 50u);
}

TEST_F(RecoveryTest, PointInTimeLosesCommitsAfterStopPoint) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  put_row(db(), table(), "kept");
  ASSERT_TRUE(db().drop_table("accounts").is_ok());
  // Transactions committed after the drop (to other objects) are lost by
  // the point-in-time choice. Here: a second table.
  auto t2 = db().create_table("audit", "USERS", 64, db_->user);
  ASSERT_TRUE(t2.is_ok());
  put_row(db(), t2.value(), "lost");
  ASSERT_TRUE(db().shutdown_abort().is_ok());

  auto pit = rm_->point_in_time_recover(
      cfg_, stop_before_drop_table("accounts"));
  ASSERT_TRUE(pit.is_ok());
  EXPECT_TRUE(pit.value().db->table_id("accounts").is_ok());
  EXPECT_FALSE(pit.value().db->table_id("audit").is_ok());  // lost with tail
}

TEST_F(RecoveryTest, RestoreToBackupLosesEverythingSince) {
  put_row(db(), table(), "in-backup");
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  const Lsn backup_lsn = backups_->newest()->backup_lsn;
  for (int i = 0; i < 20; ++i) put_row(db(), table(), "lost");
  ASSERT_TRUE(db().shutdown_abort().is_ok());

  auto pit = rm_->restore_to_backup(cfg_);
  ASSERT_TRUE(pit.is_ok());
  EXPECT_LE(pit.value().report.recovered_to, backup_lsn);
  const auto rows =
      all_rows(*pit.value().db, pit.value().db->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"in-backup"}));
}

TEST_F(RecoveryTest, RestartInstanceRunsCrashRecovery) {
  put_row(db(), table(), "survives");
  ASSERT_TRUE(db().shutdown_abort().is_ok());
  auto fresh = rm_->restart_instance(cfg_);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_TRUE(fresh.value()->is_open());
  const auto rows =
      all_rows(*fresh.value(), fresh.value()->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"survives"}));
}

TEST_F(RecoveryTest, DestroyedBackupsAreUnrecoverable) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  ASSERT_TRUE(backups_->destroy_backups().is_ok());
  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db().storage().cache().discard_all();
  db().storage().mark_missing(FileId{0});
  EXPECT_EQ(rm_->recover_datafile(db(), FileId{0}).code(),
            ErrorCode::kUnrecoverable);
}

TEST_F(RecoveryTest, InDoubtTransactionResolvedAfterMediaRecovery) {
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  const RowId victim = put_row(db(), table(), "original");

  // A transaction updates the row, then the datafile vanishes mid-life;
  // its rollback cannot complete.
  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db().update(txn.value(), table(), victim, row("dirty")).is_ok());
  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db().storage().cache().discard_all();
  db().storage().mark_missing(FileId{0});
  EXPECT_FALSE(db().rollback(txn.value()).is_ok());
  EXPECT_EQ(db().txns().active_count(), 1u);  // in doubt

  auto report = rm_->recover_datafile(db(), FileId{0});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(db().txns().active_count(), 0u);  // resolved

  auto check = db().begin();
  auto back = db().read(check.value(), table(), victim);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(testing::row_str(back.value()), "original");  // rolled back
  ASSERT_TRUE(db().commit(check.value()).is_ok());
}

}  // namespace
}  // namespace vdb::recovery
