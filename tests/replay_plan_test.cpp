// Parallel redo apply must be invisible: every replay driver routed through
// engine::RedoApplyPlan has to produce byte-identical results whatever the
// worker count. These tests run the same scenario at replay_jobs = 1 and 4
// and compare recovered data and RecoveryReport fields exactly — the
// determinism gate for the partitioned phase-two apply.
#include <gtest/gtest.h>

#include "recovery/backup.hpp"
#include "recovery/recovery_manager.hpp"
#include "tests/test_env.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_loader.hpp"
#include "tpcc/tpcc_txns.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::small_db_config;

// Deterministic mixed workload: committed inserts/updates/deletes spread
// over enough pages to give the plan several partitions, a DDL record in
// the middle of the stream (serial barrier), and one transaction left open
// at the crash (loser for the undo pass).
struct WorkloadState {
  TableId audit{};
  std::vector<RowId> rids;
};

WorkloadState run_workload(SmallDb& small, bool leave_loser = true) {
  engine::Database& db = *small.db;
  WorkloadState ws;
  for (int i = 0; i < 120; ++i) {
    ws.rids.push_back(put_row(db, small.table, "row" + std::to_string(i)));
  }
  auto audit = db.create_table("audit", "USERS", 64, small.user);
  VDB_CHECK(audit.is_ok());
  ws.audit = audit.value();
  for (int i = 0; i < 40; ++i) {
    put_row(db, ws.audit, "audit" + std::to_string(i));
  }
  auto txn = db.begin();
  VDB_CHECK(txn.is_ok());
  for (int i = 0; i < 30; i += 3) {
    VDB_CHECK(db.update(txn.value(), small.table, ws.rids[i],
                        row("updated" + std::to_string(i)))
                  .is_ok());
  }
  for (int i = 60; i < 70; ++i) {
    VDB_CHECK(db.erase(txn.value(), small.table, ws.rids[i]).is_ok());
  }
  VDB_CHECK(db.commit(txn.value()).is_ok());
  if (leave_loser) {
    // Loser: open at the crash, must be rolled back by recovery.
    auto loser = db.begin();
    VDB_CHECK(loser.is_ok());
    (void)db.insert(loser.value(), small.table, row("uncommitted"));
    (void)db.update(loser.value(), small.table, ws.rids[1], row("dirty"));
  }
  return ws;
}

struct RecoveredState {
  std::vector<std::string> accounts;
  std::vector<std::string> audit;
};

RecoveredState recover_after_crash(unsigned jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.replay_jobs = jobs;
  SmallDb small(env, cfg);
  run_workload(small);
  VDB_CHECK(small.db->shutdown_abort().is_ok());

  engine::Database next(&env.host, &env.sched, cfg);
  VDB_CHECK(next.startup().is_ok());
  RecoveredState state;
  state.accounts = all_rows(next, next.table_id("accounts").value());
  state.audit = all_rows(next, next.table_id("audit").value());
  return state;
}

TEST(ReplayPlanTest, InstanceRecoveryByteIdenticalAcrossJobs) {
  const RecoveredState serial = recover_after_crash(1);
  const RecoveredState parallel = recover_after_crash(4);
  EXPECT_FALSE(serial.accounts.empty());
  EXPECT_EQ(serial.accounts, parallel.accounts);
  EXPECT_EQ(serial.audit, parallel.audit);
  // The loser's changes must be gone in both.
  for (const auto& r : serial.accounts) {
    EXPECT_NE(r, "uncommitted");
    EXPECT_NE(r, "dirty");
  }
}

struct MediaOutcome {
  recovery::RecoveryReport report;
  std::vector<std::string> accounts;
};

MediaOutcome recover_deleted_datafile(unsigned jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config(/*archive=*/true);
  cfg.replay_jobs = jobs;
  SmallDb small(env, cfg);
  recovery::BackupManager backups(&env.host.fs(), "/backup");
  recovery::RecoveryManager rm(&env.host, &env.sched, &backups);

  put_row(*small.db, small.table, "pre-backup");
  VDB_CHECK(backups.take_backup(*small.db).is_ok());
  // No transaction left open: media recovery on a live instance expects
  // writers to have ended (open ones are rolled back by the operator first).
  run_workload(small, /*leave_loser=*/false);

  VDB_CHECK(env.host.fs().remove("/data/users01.dbf").is_ok());
  small.db->storage().cache().discard_all();
  small.db->storage().mark_missing(FileId{0});

  auto report = rm.recover_datafile(*small.db, FileId{0});
  VDB_CHECK_MSG(report.is_ok(), report.status().to_string());
  MediaOutcome out;
  out.report = report.value();
  out.accounts = all_rows(*small.db, small.table);
  return out;
}

TEST(ReplayPlanTest, MediaRecoveryReportIdenticalAcrossJobs) {
  const MediaOutcome serial = recover_deleted_datafile(1);
  const MediaOutcome parallel = recover_deleted_datafile(4);
  EXPECT_EQ(serial.report.recovered_to, parallel.report.recovered_to);
  EXPECT_EQ(serial.report.complete, parallel.report.complete);
  EXPECT_EQ(serial.report.records_applied, parallel.report.records_applied);
  EXPECT_EQ(serial.report.records_skipped, parallel.report.records_skipped);
  EXPECT_EQ(serial.report.archives_read, parallel.report.archives_read);
  EXPECT_EQ(serial.report.files_restored, parallel.report.files_restored);
  EXPECT_EQ(serial.accounts, parallel.accounts);
}

struct PitOutcome {
  recovery::RecoveryReport report;
  std::vector<std::string> accounts;
  bool audit_lost = false;
};

PitOutcome incomplete_recovery(unsigned jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config(/*archive=*/true);
  cfg.replay_jobs = jobs;
  SmallDb small(env, cfg);
  recovery::BackupManager backups(&env.host.fs(), "/backup");
  recovery::RecoveryManager rm(&env.host, &env.sched, &backups);

  VDB_CHECK(backups.take_backup(*small.db).is_ok());
  for (int i = 0; i < 60; ++i) {
    put_row(*small.db, small.table, "keep" + std::to_string(i));
  }
  // The operator fault: DROP TABLE. Work committed afterwards is lost by
  // the point-in-time choice.
  VDB_CHECK(small.db->drop_table("accounts").is_ok());
  auto audit = small.db->create_table("audit", "USERS", 64, small.user);
  VDB_CHECK(audit.is_ok());
  put_row(*small.db, audit.value(), "lost");
  VDB_CHECK(small.db->shutdown_abort().is_ok());

  auto pit = rm.point_in_time_recover(
      cfg, recovery::stop_before_drop_table("accounts"));
  VDB_CHECK_MSG(pit.is_ok(), pit.status().to_string());
  PitOutcome out;
  out.report = pit.value().report;
  out.accounts =
      all_rows(*pit.value().db, pit.value().db->table_id("accounts").value());
  out.audit_lost = !pit.value().db->table_id("audit").is_ok();
  return out;
}

TEST(ReplayPlanTest, IncompleteRecoveryIdenticalAcrossJobs) {
  const PitOutcome serial = incomplete_recovery(1);
  const PitOutcome parallel = incomplete_recovery(4);
  EXPECT_FALSE(serial.report.complete);
  EXPECT_EQ(serial.report.recovered_to, parallel.report.recovered_to);
  EXPECT_EQ(serial.report.complete, parallel.report.complete);
  EXPECT_EQ(serial.report.records_applied, parallel.report.records_applied);
  EXPECT_EQ(serial.report.records_skipped, parallel.report.records_skipped);
  EXPECT_EQ(serial.accounts, parallel.accounts);
  EXPECT_EQ(serial.accounts.size(), 60u);
  EXPECT_TRUE(serial.audit_lost);
  EXPECT_TRUE(parallel.audit_lost);
}

// Full-stack check: TPC-C crash recovery keeps every consistency condition
// at any worker count and recovers identical order state.
struct TpccOutcome {
  std::uint32_t violations = 0;
  std::uint64_t orders = 0;
};

TpccOutcome tpcc_crash_recovery(unsigned jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 8 * 1024 * 1024;
  cfg.storage.cache_pages = 1024;
  cfg.replay_jobs = jobs;
  auto db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  VDB_CHECK(db->create().is_ok());
  VDB_CHECK(db->create_tablespace("TPCC", {{"/data/t1.dbf", 512},
                                           {"/data/t2.dbf", 512}})
                .is_ok());
  auto user = db->create_user("TPCC", false);
  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 30;
  scale.items = 200;
  scale.initial_orders_per_district = 30;
  tpcc::TpccDb tdb(scale);
  VDB_CHECK(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
  VDB_CHECK(tdb.attach(db.get()).is_ok());
  tpcc::Loader loader(&tdb, 7);
  VDB_CHECK(loader.load().is_ok());
  tpcc::TpccRandom random(Rng{11}, scale);
  tpcc::TpccTxns txns(&tdb, &random);
  for (int i = 0; i < 40; ++i) {
    auto outcome = txns.new_order(1);
    VDB_CHECK(outcome.is_ok());
  }
  VDB_CHECK(db->shutdown_abort().is_ok());

  auto fresh = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  fresh->set_on_mounted([&](engine::Database& d) { (void)tdb.attach(&d); });
  VDB_CHECK(fresh->startup().is_ok());

  tpcc::ConsistencyChecker checker(&tdb);
  auto report = checker.run_all();
  VDB_CHECK(report.is_ok());
  TpccOutcome out;
  out.violations = report.value().violations;
  (void)fresh->scan(tdb.table(tpcc::Tbl::kOrder),
                    [&](RowId, std::span<const std::uint8_t>) {
                      out.orders += 1;
                      return true;
                    });
  return out;
}

TEST(ReplayPlanTest, TpccCrashRecoveryConsistentAcrossJobs) {
  const TpccOutcome serial = tpcc_crash_recovery(1);
  const TpccOutcome parallel = tpcc_crash_recovery(4);
  EXPECT_EQ(serial.violations, 0u);
  EXPECT_EQ(parallel.violations, 0u);
  EXPECT_EQ(serial.orders, parallel.orders);
  EXPECT_GT(serial.orders, 0u);
}

}  // namespace
}  // namespace vdb::engine
