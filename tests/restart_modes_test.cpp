// Early-open restart modes (M1 traditional .. M4 mixed) must be invisible
// to the recovered state: whatever the mode, the stall knob, or the replay
// worker count, the database converges to the byte-identical end state the
// traditional restart produces. On top of that determinism gate, these
// tests pin the mode-specific contracts: M2 rejects (or stalls on) user
// DML against pages with pending redo, M3 recovers pages lazily on fetch
// and trickles the rest in the background, a second crash in the middle of
// an early-open restart is recoverable, and the recovery trace spans keep
// tiling the trace with the on_demand phase in play.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_env.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_loader.hpp"
#include "tpcc/tpcc_txns.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::row_str;
using testing::small_db_config;

// Deterministic mixed workload in the shape of replay_plan_test's, with
// one twist: a checkpoint in the middle. Pages never flushed to disk are
// drained eagerly while the object state is rebuilt (the datafile scan
// cannot see them), so it is the checkpointed pages with post-checkpoint
// redo — spread across several accounts and audit pages here — that stay
// pending behind an early open.
struct WorkloadState {
  TableId audit{};
  std::vector<RowId> rids;
  std::vector<RowId> audit_rids;
};

WorkloadState run_workload(SmallDb& small) {
  engine::Database& db = *small.db;
  WorkloadState ws;
  for (int i = 0; i < 300; ++i) {
    ws.rids.push_back(put_row(db, small.table, "row" + std::to_string(i)));
  }
  auto audit = db.create_table("audit", "USERS", 256, small.user);
  VDB_CHECK(audit.is_ok());
  ws.audit = audit.value();
  for (int i = 0; i < 120; ++i) {
    ws.audit_rids.push_back(
        put_row(db, ws.audit, "audit" + std::to_string(i)));
  }
  // Flush everything: the redo staged after this point is what an early
  // open leaves pending.
  VDB_CHECK(db.checkpoint_now().is_ok());
  auto txn = db.begin();
  VDB_CHECK(txn.is_ok());
  for (int i = 0; i < 300; i += 25) {
    VDB_CHECK(db.update(txn.value(), small.table, ws.rids[i],
                        row("updated" + std::to_string(i)))
                  .is_ok());
  }
  for (int i = 60; i < 70; ++i) {
    VDB_CHECK(db.erase(txn.value(), small.table, ws.rids[i]).is_ok());
  }
  for (int i = 0; i < 120; i += 10) {
    VDB_CHECK(db.update(txn.value(), ws.audit, ws.audit_rids[i],
                        row("audited" + std::to_string(i)))
                  .is_ok());
  }
  VDB_CHECK(db.commit(txn.value()).is_ok());
  // Loser: open at the crash, must be rolled back by recovery.
  auto loser = db.begin();
  VDB_CHECK(loser.is_ok());
  (void)db.insert(loser.value(), small.table, row("uncommitted"));
  (void)db.update(loser.value(), small.table, ws.rids[1], row("dirty"));
  return ws;
}

struct RecoveredState {
  std::vector<std::string> accounts;
  std::vector<std::string> audit;
};

RecoveredState crash_and_recover(RestartMode mode, bool stall,
                                 unsigned jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.replay_jobs = jobs;
  cfg.restart_mode = mode;
  cfg.early_open_stall = stall;
  SmallDb small(env, cfg);
  run_workload(small);
  VDB_CHECK(small.db->shutdown_abort().is_ok());

  engine::Database next(&env.host, &env.sched, cfg);
  VDB_CHECK(next.startup().is_ok());
  // Drain whatever the mode left pending so the comparison sees the
  // converged end state (a no-op for M1).
  VDB_CHECK(next.complete_restart_recovery().is_ok());
  VDB_CHECK(next.restart_coordinator() == nullptr);
  RecoveredState state;
  state.accounts = all_rows(next, next.table_id("accounts").value());
  state.audit = all_rows(next, next.table_id("audit").value());
  return state;
}

TEST(RestartModesTest, AllModesConvergeToTraditionalStateAtAnyJobCount) {
  const RecoveredState baseline =
      crash_and_recover(RestartMode::kM1Traditional, false, 1);
  ASSERT_FALSE(baseline.accounts.empty());
  for (const auto& r : baseline.accounts) {
    EXPECT_NE(r, "uncommitted");
    EXPECT_NE(r, "dirty");
  }
  struct Combo {
    RestartMode mode;
    bool stall;
  };
  const Combo combos[] = {
      {RestartMode::kM1Traditional, false},
      {RestartMode::kM2EarlyOpen, false},
      {RestartMode::kM2EarlyOpen, true},
      {RestartMode::kM3OnDemand, false},
      {RestartMode::kM4Mixed, false},
  };
  for (const Combo& combo : combos) {
    for (unsigned jobs : {1u, 4u}) {
      const RecoveredState state =
          crash_and_recover(combo.mode, combo.stall, jobs);
      EXPECT_EQ(state.accounts, baseline.accounts)
          << to_string(combo.mode) << " stall=" << combo.stall
          << " jobs=" << jobs;
      EXPECT_EQ(state.audit, baseline.audit)
          << to_string(combo.mode) << " stall=" << combo.stall
          << " jobs=" << jobs;
    }
  }
}

// Crash under an early-open mode, restart, and hand back the pieces the
// mode-contract tests poke at.
struct EarlyOpenRig {
  SimEnv env;
  engine::DatabaseConfig cfg;
  WorkloadState ws;
  std::unique_ptr<engine::Database> db;
  TableId accounts{};

  EarlyOpenRig(RestartMode mode, bool stall,
               obs::Observability* shared_obs = nullptr) {
    cfg = small_db_config();
    cfg.restart_mode = mode;
    cfg.early_open_stall = stall;
    if (shared_obs != nullptr) cfg.obs = shared_obs;
    SmallDb small(env, cfg);
    ws = run_workload(small);
    VDB_CHECK(small.db->shutdown_abort().is_ok());
    // A harness-owned trace (the experiment does the same) stays active
    // across the open so post-open on-demand work records spans into it.
    if (shared_obs != nullptr) {
      shared_obs->tracer().start("restart", env.clock.now());
    }
    db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
    VDB_CHECK(db->startup().is_ok());
    accounts = db->table_id("accounts").value();
  }

  /// A committed row whose page still has redo pending after the open,
  /// together with the table it lives in (the loser's eager pre-undo
  /// drain may have cleared some accounts pages, so audit is searched
  /// too).
  struct PendingRow {
    TableId table{};
    RowId rid{};
  };
  PendingRow pending_row() const {
    const RestartCoordinator* rc = db->restart_coordinator();
    VDB_CHECK(rc != nullptr);
    for (const RowId& rid : ws.rids) {
      if (rc->page_pending(rid.page)) return {accounts, rid};
    }
    for (const RowId& rid : ws.audit_rids) {
      if (rc->page_pending(rid.page)) {
        return {db->table_id("audit").value(), rid};
      }
    }
    VDB_CHECK_MSG(false, "no workload row on a pending page");
    return {};
  }
};

TEST(RestartModesTest, M2RejectsUserDmlOnPendingPages) {
  EarlyOpenRig rig(RestartMode::kM2EarlyOpen, /*stall=*/false);
  ASSERT_TRUE(rig.db->restart_coordinator() != nullptr);
  ASSERT_TRUE(rig.db->restart_coordinator()->has_pending());
  const auto [table, rid] = rig.pending_row();

  auto txn = rig.db->begin();
  ASSERT_TRUE(txn.is_ok());
  auto read = rig.db->read(txn.value(), table, rid);
  EXPECT_EQ(read.code(), ErrorCode::kRecoveryRequired);
  auto update = rig.db->update(txn.value(), table, rid, row("new"));
  EXPECT_EQ(update.code(), ErrorCode::kRecoveryRequired);
  ASSERT_TRUE(rig.db->rollback(txn.value()).is_ok());

  // Once restart recovery completes the same access goes through.
  ASSERT_TRUE(rig.db->complete_restart_recovery().is_ok());
  auto txn2 = rig.db->begin();
  ASSERT_TRUE(txn2.is_ok());
  EXPECT_TRUE(rig.db->read(txn2.value(), table, rid).is_ok());
  ASSERT_TRUE(rig.db->commit(txn2.value()).is_ok());
}

TEST(RestartModesTest, M2StallRecoversThePageInline) {
  EarlyOpenRig rig(RestartMode::kM2EarlyOpen, /*stall=*/true);
  ASSERT_TRUE(rig.db->restart_coordinator() != nullptr);
  const auto [table, rid] = rig.pending_row();

  auto txn = rig.db->begin();
  ASSERT_TRUE(txn.is_ok());
  auto read = rig.db->read(txn.value(), table, rid);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_TRUE(rig.db->commit(txn.value()).is_ok());

  const RestartCoordinator* rc = rig.db->restart_coordinator();
  ASSERT_TRUE(rc != nullptr);
  EXPECT_GE(rc->recovered_on_demand(), 1u);
  EXPECT_FALSE(rc->page_pending(rid.page));
  // The inline drain is charged to the recovery_read_stall wait event.
  EXPECT_GE(rig.db->obs().waits().total_waits(
                obs::WaitEvent::kRecoveryReadStall),
            1u);
}

TEST(RestartModesTest, M3RecoversOnFetchAndTricklesInBackground) {
  EarlyOpenRig rig(RestartMode::kM3OnDemand, /*stall=*/false);
  ASSERT_TRUE(rig.db->restart_coordinator() != nullptr);
  ASSERT_TRUE(rig.db->restart_coordinator()->has_pending());
  const auto [table, rid] = rig.pending_row();

  // On-demand: a read of a pending page recovers it on the spot (M3 never
  // rejects) and the row comes back with its committed contents.
  auto txn = rig.db->begin();
  ASSERT_TRUE(txn.is_ok());
  auto read = rig.db->read(txn.value(), table, rid);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_TRUE(rig.db->commit(txn.value()).is_ok());
  EXPECT_GE(rig.db->restart_coordinator()->recovered_on_demand(), 1u);

  // Background: the trickle sweeper (1 s cadence for M3) drains the rest;
  // once the plan is empty the coordinator tears itself down.
  rig.env.sched.run_until(rig.env.clock.now() + 120 * kSecond);
  EXPECT_TRUE(rig.db->restart_coordinator() == nullptr);

  const std::uint64_t background =
      rig.db->obs().registry().counter("pages recovered background")->value();
  EXPECT_GE(background, 1u);
}

TEST(RestartModesTest, SecondCrashDuringEarlyOpenRestartIsRecoverable) {
  EarlyOpenRig rig(RestartMode::kM3OnDemand, /*stall=*/false);
  ASSERT_TRUE(rig.db->restart_coordinator() != nullptr);

  // Recover a couple of pages on demand, then crash again with the bulk of
  // the redo still pending (the double-failure case: the control file must
  // not have advanced past the pending records).
  const auto [table, rid] = rig.pending_row();
  auto txn = rig.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(rig.db->read(txn.value(), table, rid).is_ok());
  ASSERT_TRUE(rig.db->commit(txn.value()).is_ok());
  ASSERT_TRUE(rig.db->restart_coordinator()->has_pending());
  ASSERT_TRUE(rig.db->shutdown_abort().is_ok());

  // Third incarnation, traditional restart: must replay everything that
  // was still pending and land on the converged state.
  engine::DatabaseConfig cfg = rig.cfg;
  cfg.restart_mode = RestartMode::kM1Traditional;
  engine::Database next(&rig.env.host, &rig.env.sched, cfg);
  ASSERT_TRUE(next.startup().is_ok());
  EXPECT_TRUE(next.restart_coordinator() == nullptr);

  const auto accounts = all_rows(next, next.table_id("accounts").value());
  const RecoveredState baseline =
      crash_and_recover(RestartMode::kM1Traditional, false, 1);
  EXPECT_EQ(accounts, baseline.accounts);
}

TEST(RestartModesTest, TraceSpansKeepTilingWithOnDemandPhase) {
  obs::Observability shared;
  EarlyOpenRig rig(RestartMode::kM3OnDemand, /*stall=*/false, &shared);
  ASSERT_TRUE(rig.db->restart_coordinator() != nullptr);

  // Generate on-demand spans, then let the sweeper add background ones.
  const auto [table, rid] = rig.pending_row();
  auto txn = rig.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(rig.db->read(txn.value(), table, rid).is_ok());
  ASSERT_TRUE(rig.db->commit(txn.value()).is_ok());
  ASSERT_TRUE(rig.db->complete_restart_recovery().is_ok());

  obs::RecoveryTracer& tracer = rig.db->obs().tracer();
  ASSERT_TRUE(tracer.active());
  tracer.finish(rig.env.clock.now());
  const obs::RecoveryTrace* trace = tracer.latest();
  ASSERT_TRUE(trace != nullptr);
  ASSERT_TRUE(trace->finished);

  // Spans tile: they are gap-free, in order, and sum to end - start.
  SimDuration sum = 0;
  SimTime cursor = trace->start;
  for (const obs::PhaseSpan& span : trace->spans) {
    EXPECT_EQ(span.start, cursor);
    cursor = span.end;
    sum += span.duration();
  }
  EXPECT_EQ(cursor, trace->end);
  EXPECT_EQ(sum, trace->end - trace->start);
  EXPECT_GT(trace->phase_time(obs::RecoveryPhase::kOnDemand), 0u);
}

// Live TPC-C over an M3 restart: on-demand recovery under real traffic,
// interrupted by a second crash mid-restart, must keep every TPC-C
// consistency condition.
TEST(RestartModesTest, TpccOnDemandRestartSurvivesConcurrentCrash) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 8 * 1024 * 1024;
  cfg.storage.cache_pages = 1024;
  cfg.restart_mode = RestartMode::kM3OnDemand;
  auto db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db->create().is_ok());
  ASSERT_TRUE(db->create_tablespace("TPCC", {{"/data/t1.dbf", 512},
                                             {"/data/t2.dbf", 512}})
                  .is_ok());
  auto user = db->create_user("TPCC", false);
  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 30;
  scale.items = 200;
  scale.initial_orders_per_district = 30;
  tpcc::TpccDb tdb(scale);
  ASSERT_TRUE(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
  ASSERT_TRUE(tdb.attach(db.get()).is_ok());
  tpcc::Loader loader(&tdb, 7);
  ASSERT_TRUE(loader.load().is_ok());
  tpcc::TpccRandom random(Rng{11}, scale);
  tpcc::TpccTxns txns(&tdb, &random);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(txns.new_order(1).is_ok());
  }
  // Checkpoint mid-run so the later orders' pages are on disk with redo
  // pending on top — the state an early open actually leaves behind.
  ASSERT_TRUE(db->checkpoint_now().is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(txns.new_order(1).is_ok());
  }
  ASSERT_TRUE(db->shutdown_abort().is_ok());

  // First restart: M3 opens with redo pending; live transactions recover
  // the pages they touch on demand.
  auto db2 = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  db2->set_on_mounted([&](engine::Database& d) { (void)tdb.attach(&d); });
  ASSERT_TRUE(db2->startup().is_ok());
  ASSERT_TRUE(db2->restart_coordinator() != nullptr);
  for (int i = 0; i < 10; ++i) {
    auto outcome = txns.new_order(1);
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  }
  EXPECT_GE(db2->restart_coordinator() != nullptr
                ? db2->restart_coordinator()->recovered_on_demand()
                : 1u,
            1u);

  // Second crash while restart recovery is still pending.
  ASSERT_TRUE(db2->shutdown_abort().is_ok());
  auto db3 = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  db3->set_on_mounted([&](engine::Database& d) { (void)tdb.attach(&d); });
  ASSERT_TRUE(db3->startup().is_ok());
  ASSERT_TRUE(db3->complete_restart_recovery().is_ok());

  tpcc::ConsistencyChecker checker(&tdb);
  auto report = checker.run_all();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().violations, 0u);
  std::uint64_t orders = 0;
  ASSERT_TRUE(db3->scan(tdb.table(tpcc::Tbl::kOrder),
                        [&](RowId, std::span<const std::uint8_t>) {
                          orders += 1;
                          return true;
                        })
                  .is_ok());
  // 30 initial + 40 pre-crash; the 10 mid-restart orders may or may not
  // have all survived the second crash's loser rollback, but committed
  // ones must be there.
  EXPECT_GE(orders, 70u);
}

}  // namespace
}  // namespace vdb::engine
