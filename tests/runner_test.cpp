// ExperimentRunner: the parallel fan-out must be invisible in the results —
// element-wise identical to serial execution — and a failing experiment must
// surface its Status without wedging the pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "benchmark/experiment.hpp"
#include "benchmark/recovery_configs.hpp"
#include "benchmark/runner.hpp"

namespace vdb::bench {
namespace {

ExperimentOptions small_options(std::uint64_t seed) {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
  opts.duration = 2 * kMinute;
  opts.seed = seed;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 30;
  opts.scale.items = 100;
  opts.scale.initial_orders_per_district = 30;
  return opts;
}

std::vector<LabelledExperiment> small_batch() {
  std::vector<LabelledExperiment> batch;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    ExperimentOptions opts = small_options(seed);
    if (seed == 33u) {
      faults::FaultSpec fault;
      fault.type = faults::FaultType::kShutdownAbort;
      fault.inject_at = 30 * kSecond;
      fault.tablespace = "TPCC";
      fault.table = "history";
      opts.fault = fault;
    }
    batch.push_back({"seed-" + std::to_string(seed), opts});
  }
  return batch;
}

void expect_same_result(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.intentional_rollbacks, b.intentional_rollbacks);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_DOUBLE_EQ(a.tpmc, b.tpmc);
  EXPECT_DOUBLE_EQ(a.tpm_total, b.tpm_total);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.full_checkpoints, b.full_checkpoints);
  EXPECT_EQ(a.incremental_checkpoints, b.incremental_checkpoints);
  EXPECT_EQ(a.log_switches, b.log_switches);
  EXPECT_EQ(a.redo_bytes, b.redo_bytes);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.recovery_time, b.recovery_time);
  EXPECT_EQ(a.lost_committed, b.lost_committed);
  EXPECT_EQ(a.integrity_violations, b.integrity_violations);
}

TEST(ExperimentRunner, ParallelMatchesSerial) {
  const std::vector<LabelledExperiment> batch = small_batch();

  ExperimentRunner serial(1);
  auto serial_outcomes = serial.run_all(batch);

  ExperimentRunner parallel(4);
  auto parallel_outcomes = parallel.run_all(batch);

  ASSERT_EQ(serial_outcomes.size(), batch.size());
  ASSERT_EQ(parallel_outcomes.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].label, batch[i].label);
    EXPECT_EQ(parallel_outcomes[i].label, batch[i].label);
    ASSERT_TRUE(serial_outcomes[i].result.is_ok())
        << serial_outcomes[i].result.status().to_string();
    ASSERT_TRUE(parallel_outcomes[i].result.is_ok())
        << parallel_outcomes[i].result.status().to_string();
    expect_same_result(serial_outcomes[i].result.value(),
                       parallel_outcomes[i].result.value());
  }
}

TEST(ExperimentRunner, FailingExperimentSurfacesStatus) {
  std::vector<LabelledExperiment> batch = small_batch();
  // A tablespace with zero datafiles cannot hold the TPC-C load: the
  // harness reports the error instead of producing a result.
  ExperimentOptions broken = small_options(99);
  broken.datafiles = 0;
  batch.insert(batch.begin() + 1, {"broken", broken});

  ExperimentRunner runner(4);
  auto outcomes = runner.run_all(batch);
  ASSERT_EQ(outcomes.size(), batch.size());

  EXPECT_FALSE(outcomes[1].result.is_ok());
  EXPECT_EQ(outcomes[1].label, "broken");
  // Every other experiment still completed: the pool drained the queue.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(outcomes[i].result.is_ok())
        << outcomes[i].result.status().to_string();
  }
}

TEST(ExperimentRunner, DefaultJobsRespectsEnv) {
  // Not parallel-safe with other env tests, but the suite runs these
  // serially within one process.
  setenv("VDB_JOBS", "3", 1);
  EXPECT_EQ(ExperimentRunner::default_jobs(), 3u);
  setenv("VDB_JOBS", "0", 1);
  EXPECT_EQ(ExperimentRunner::default_jobs(), 1u);
  unsetenv("VDB_JOBS");
  EXPECT_GE(ExperimentRunner::default_jobs(), 1u);
}

}  // namespace
}  // namespace vdb::bench
