#include <gtest/gtest.h>

#include "sim/disk.hpp"
#include "sim/filesystem.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {
namespace {

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_by(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
  clock.advance_to(7 * kSecond);
  EXPECT_EQ(clock.now(), 7 * kSecond);
  clock.advance_to(7 * kSecond);  // no-op allowed
}

TEST(Scheduler, FiresInTimestampOrder) {
  VirtualClock clock;
  Scheduler sched(&clock);
  std::vector<int> fired;
  sched.schedule_at(30, [&] { fired.push_back(3); });
  sched.schedule_at(10, [&] { fired.push_back(1); });
  sched.schedule_at(20, [&] { fired.push_back(2); });
  sched.run_until(25);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(clock.now(), 25u);
  sched.run_until(40);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimeIsFifo) {
  VirtualClock clock;
  Scheduler sched(&clock);
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(10, [&fired, i] { fired.push_back(i); });
  }
  sched.run_until(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsFiring) {
  VirtualClock clock;
  Scheduler sched(&clock);
  bool fired = false;
  EventHandle handle = sched.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  sched.run_until(20);
  EXPECT_FALSE(fired);
}

TEST(Scheduler, PeriodicFiresRepeatedly) {
  VirtualClock clock;
  Scheduler sched(&clock);
  int count = 0;
  EventHandle handle = sched.schedule_every(10, [&] { count += 1; });
  sched.run_until(35);
  EXPECT_EQ(count, 3);  // t=10,20,30
  handle.cancel();
  sched.run_until(100);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, EventsScheduledByEventsRun) {
  VirtualClock clock;
  Scheduler sched(&clock);
  int depth = 0;
  sched.schedule_at(10, [&] {
    depth = 1;
    sched.schedule_at(15, [&] { depth = 2; });
  });
  sched.run_until(20);
  EXPECT_EQ(depth, 2);
}

TEST(Scheduler, RunDueFiresLateEvents) {
  VirtualClock clock;
  Scheduler sched(&clock);
  int count = 0;
  sched.schedule_at(10, [&] { count += 1; });
  clock.advance_to(50);  // a long transaction passed the event time
  sched.run_due();
  EXPECT_EQ(count, 1);
}

TEST(Disk, ServiceTimeModel) {
  Disk disk(DiskId{0}, "d", DiskParams{8 * kMillisecond, 20ull << 20,
                                       500 * kMicrosecond});
  // Random 8 KiB request: 8ms seek + 8K/20M s transfer.
  const SimTime done = disk.submit(0, 8192, /*sequential=*/false);
  const SimDuration transfer = 8192ull * kSecond / (20ull << 20);
  EXPECT_EQ(done, 8 * kMillisecond + transfer);
  EXPECT_EQ(disk.stats().requests, 1u);
  EXPECT_EQ(disk.stats().bytes, 8192u);
}

TEST(Disk, RequestsQueueFifo) {
  Disk disk(DiskId{0}, "d");
  const SimTime first = disk.submit(0, 8192, false);
  const SimTime second = disk.submit(0, 8192, false);
  EXPECT_GT(second, first);  // second waits for first
  // A request arriving after the disk idles starts immediately.
  const SimTime third = disk.submit(second + kSecond, 8192, false);
  EXPECT_GT(third, second + kSecond);
}

TEST(Disk, SequentialCheaperThanRandom) {
  Disk a(DiskId{0}, "a"), b(DiskId{1}, "b");
  EXPECT_LT(a.submit(0, 8192, true), b.submit(0, 8192, false));
}

class SimFsTest : public ::testing::Test {
 protected:
  VirtualClock clock_;
  Host host_{"h", &clock_};
  void SetUp() override {
    host_.add_disk("/data");
    host_.add_disk("/other");
  }
  SimFs& fs() { return host_.fs(); }
};

TEST_F(SimFsTest, CreateWriteRead) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  EXPECT_TRUE(fs().exists("/data/a"));
  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  ASSERT_TRUE(fs().write("/data/a", 0, data, IoMode::kForeground).is_ok());
  auto back = fs().read("/data/a", 1, 2, IoMode::kForeground);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), (std::vector<std::uint8_t>{2, 3}));
}

TEST_F(SimFsTest, CreateDuplicateFails) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  EXPECT_EQ(fs().create("/data/a").code(), ErrorCode::kAlreadyExists);
}

TEST_F(SimFsTest, NoMountFails) {
  EXPECT_EQ(fs().create("/nowhere/x").code(), ErrorCode::kInvalidArgument);
}

TEST_F(SimFsTest, RemoveAndMissing) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  EXPECT_TRUE(fs().remove("/data/a").is_ok());
  EXPECT_FALSE(fs().exists("/data/a"));
  EXPECT_EQ(fs().remove("/data/a").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().read("/data/a", 0, 1, IoMode::kForeground).code(),
            ErrorCode::kNotFound);
}

TEST_F(SimFsTest, CorruptBlocksReads) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  ASSERT_TRUE(
      fs().append("/data/a", std::vector<std::uint8_t>{1}, IoMode::kForeground)
          .is_ok());
  ASSERT_TRUE(fs().corrupt("/data/a").is_ok());
  EXPECT_TRUE(fs().is_corrupted("/data/a"));
  EXPECT_EQ(fs().read("/data/a", 0, 1, IoMode::kForeground).code(),
            ErrorCode::kCorruption);
  EXPECT_EQ(fs().read_all("/data/a", IoMode::kForeground).code(),
            ErrorCode::kCorruption);
}

TEST_F(SimFsTest, ReadPastEndFails) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  EXPECT_EQ(fs().read("/data/a", 0, 10, IoMode::kForeground).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SimFsTest, ForegroundAdvancesClockBackgroundDoesNot) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  const std::vector<std::uint8_t> data(8192);
  const SimTime before = clock_.now();
  ASSERT_TRUE(fs().write("/data/a", 0, data, IoMode::kBackground).is_ok());
  EXPECT_EQ(clock_.now(), before);
  ASSERT_TRUE(fs().write("/data/a", 0, data, IoMode::kForeground).is_ok());
  EXPECT_GT(clock_.now(), before);
}

TEST_F(SimFsTest, BackgroundOccupiesDevice) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  const std::vector<std::uint8_t> big(1 << 20);
  ASSERT_TRUE(fs().write("/data/a", 0, big, IoMode::kBackground).is_ok());
  // The next foreground op waits for the background one.
  const SimTime before = clock_.now();
  ASSERT_TRUE(fs().write("/data/a", 0, std::vector<std::uint8_t>{1},
                         IoMode::kForeground)
                  .is_ok());
  const SimDuration bg_time = (1ull << 20) * kSecond / (20ull << 20);
  EXPECT_GT(clock_.now() - before, bg_time);
}

TEST_F(SimFsTest, ChargedSizeTracksLogicalBytes) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  const std::vector<std::uint8_t> data{1, 2, 3};
  ASSERT_TRUE(fs().append("/data/a", data, IoMode::kBackground, 1000).is_ok());
  EXPECT_EQ(fs().size("/data/a").value(), 3u);
  EXPECT_EQ(fs().charged_size("/data/a").value(), 1000u);
}

TEST_F(SimFsTest, CopyPreservesContentAndCharge) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  ASSERT_TRUE(fs().append("/data/a", std::vector<std::uint8_t>{5, 6},
                          IoMode::kBackground, 500)
                  .is_ok());
  ASSERT_TRUE(fs().copy("/data/a", "/other/b", IoMode::kBackground).is_ok());
  EXPECT_EQ(fs().read_all("/other/b", IoMode::kBackground).value(),
            (std::vector<std::uint8_t>{5, 6}));
  EXPECT_EQ(fs().charged_size("/other/b").value(), 500u);
}

TEST_F(SimFsTest, ListByPrefix) {
  ASSERT_TRUE(fs().create("/data/x1").is_ok());
  ASSERT_TRUE(fs().create("/data/x2").is_ok());
  ASSERT_TRUE(fs().create("/other/x3").is_ok());
  const auto listed = fs().list("/data/x");
  EXPECT_EQ(listed, (std::vector<std::string>{"/data/x1", "/data/x2"}));
}

TEST_F(SimFsTest, LongestPrefixMountWins) {
  host_.add_disk("/data/sub");
  Disk* sub = fs().disk_for("/data/sub/file");
  Disk* top = fs().disk_for("/data/file");
  ASSERT_NE(sub, nullptr);
  ASSERT_NE(top, nullptr);
  EXPECT_NE(sub, top);
}

TEST_F(SimFsTest, TruncateResizes) {
  ASSERT_TRUE(fs().create("/data/a").is_ok());
  ASSERT_TRUE(fs().truncate("/data/a", 100).is_ok());
  EXPECT_EQ(fs().size("/data/a").value(), 100u);
  auto zeros = fs().read("/data/a", 0, 100, IoMode::kBackground);
  ASSERT_TRUE(zeros.is_ok());
  for (auto b : zeros.value()) EXPECT_EQ(b, 0);
  ASSERT_TRUE(fs().truncate("/data/a", 10).is_ok());
  EXPECT_EQ(fs().size("/data/a").value(), 10u);
}

TEST(Network, TransfersSerialize) {
  NetworkLink link(NetworkParams{10ull << 20, 1 * kMillisecond});
  const SimTime first = link.transfer(0, 1 << 20);
  const SimTime second = link.transfer(0, 1 << 20);
  EXPECT_GT(second, first);
  EXPECT_EQ(link.stats().transfers, 2u);
  EXPECT_EQ(link.stats().bytes, 2u << 20);
}

TEST(Network, LatencyPlusBandwidth) {
  NetworkLink link(NetworkParams{10ull << 20, 1 * kMillisecond});
  const SimTime done = link.transfer(0, 10 << 20);
  EXPECT_EQ(done, 1 * kMillisecond + 1 * kSecond);
}

}  // namespace
}  // namespace vdb::sim
