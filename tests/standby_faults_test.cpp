// The paper's §5.3 claim: "the recovery time in a stand-by database is the
// same for all the faults" — activation is independent of what broke the
// primary. Verified across the whole benchmark faultload.
#include <gtest/gtest.h>

#include "benchmark/experiment.hpp"

namespace vdb::bench {
namespace {

ExperimentOptions standby_options(faults::FaultType type) {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F1G3T1", 1, 3, 60};
  opts.with_standby = true;
  opts.duration = 4 * kMinute;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 100;
  opts.scale.items = 1000;
  opts.scale.initial_orders_per_district = 100;
  faults::FaultSpec fault;
  fault.type = type;
  fault.inject_at = 150 * kSecond;
  fault.tablespace = "TPCC";
  fault.table = "history";
  opts.fault = fault;
  return opts;
}

class StandbyFaultSweep
    : public ::testing::TestWithParam<faults::FaultType> {};

TEST_P(StandbyFaultSweep, FailoverRecoversRegardlessOfFaultType) {
  auto result = Experiment(standby_options(GetParam())).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_EQ(result.value().integrity_violations, 0u);
  // Failover time: activation cost + backlog drain + first commit. Short
  // and bounded, whatever the fault was.
  EXPECT_LT(result.value().recovery_time, 60 * kSecond);
  EXPECT_GT(result.value().recovery_time, 5 * kSecond);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, StandbyFaultSweep,
    ::testing::Values(faults::FaultType::kShutdownAbort,
                      faults::FaultType::kDeleteDatafile,
                      faults::FaultType::kDeleteTablespace,
                      faults::FaultType::kSetTablespaceOffline,
                      faults::FaultType::kDeleteUserObject),
    [](const ::testing::TestParamInfo<faults::FaultType>& info) {
      switch (info.param) {
        case faults::FaultType::kShutdownAbort: return "ShutdownAbort";
        case faults::FaultType::kDeleteDatafile: return "DeleteDatafile";
        case faults::FaultType::kDeleteTablespace: return "DeleteTablespace";
        case faults::FaultType::kSetDatafileOffline:
          return "SetDatafileOffline";
        case faults::FaultType::kSetTablespaceOffline:
          return "SetTablespaceOffline";
        case faults::FaultType::kDeleteUserObject: return "DeleteUserObject";
      }
      return "Unknown";
    });

TEST(StandbyFaultSweep, ActivationTimeIsFaultIndependent) {
  // Run two very different faults and compare the measured failover times:
  // per the paper they should be close (same activation procedure).
  auto crash = Experiment(
      standby_options(faults::FaultType::kShutdownAbort)).run();
  auto drop = Experiment(
      standby_options(faults::FaultType::kDeleteTablespace)).run();
  ASSERT_TRUE(crash.is_ok());
  ASSERT_TRUE(drop.is_ok());
  const double a = to_seconds(crash.value().recovery_time);
  const double b = to_seconds(drop.value().recovery_time);
  EXPECT_LT(std::abs(a - b), std::max(a, b) * 0.5)
      << "failover " << a << "s vs " << b << "s";
}

}  // namespace
}  // namespace vdb::bench
