#include <gtest/gtest.h>

#include "recovery/backup.hpp"
#include "sim/network.hpp"
#include "standby/standby.hpp"
#include "tests/test_env.hpp"

namespace vdb::standby {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::small_db_config;

class StandbyTest : public ::testing::Test {
 protected:
  SimEnv env_;  // primary host lives here (shared clock)
  std::unique_ptr<sim::Host> standby_host_;
  std::unique_ptr<sim::NetworkLink> link_;
  engine::DatabaseConfig cfg_ = small_db_config(/*archive=*/true);
  std::unique_ptr<SmallDb> primary_;
  std::unique_ptr<recovery::BackupManager> backups_;
  std::unique_ptr<StandbyDatabase> standby_;

  void SetUp() override {
    cfg_.redo.file_size_bytes = 64 * 1024;  // frequent switches → shipping
    primary_ = std::make_unique<SmallDb>(env_, cfg_);
    backups_ =
        std::make_unique<recovery::BackupManager>(&env_.host.fs(), "/backup");

    standby_host_ = std::make_unique<sim::Host>("standby", &env_.clock);
    standby_host_->add_disk("/data");
    standby_host_->add_disk("/redo");
    standby_host_->add_disk("/arch");
    standby_host_->add_disk("/backup");
    link_ = std::make_unique<sim::NetworkLink>();

    StandbyConfig scfg;
    scfg.db = cfg_;
    standby_ = std::make_unique<StandbyDatabase>(standby_host_.get(),
                                                 &env_.sched, scfg,
                                                 link_.get());
    ASSERT_TRUE(standby_->instantiate_from(*primary_->db, *backups_).is_ok());
    primary_->db->archiver().on_archived =
        [this](const std::string& path, std::uint64_t seq, SimTime done_at) {
          standby_->on_primary_archive(env_.host.fs(), path, seq, done_at);
        };
  }
};

TEST_F(StandbyTest, InstantiationCopiesDatafiles) {
  EXPECT_TRUE(standby_host_->fs().exists("/data/users01.dbf"));
  EXPECT_FALSE(standby_->active());
  EXPECT_GT(standby_->applied_to(), 0u);
}

TEST_F(StandbyTest, ArchivesShipAndApply) {
  for (int i = 0; i < 400; ++i) {
    put_row(*primary_->db, primary_->table, std::string(60, 'a'));
  }
  EXPECT_GT(standby_->archives_applied(), 0u);
  EXPECT_GT(standby_->applied_to(), 0u);
  EXPECT_LT(standby_->applied_to(), primary_->db->redo().flushed_lsn());
}

TEST_F(StandbyTest, ActivationRecoversArchivedState) {
  std::vector<Lsn> commit_lsns;
  for (int i = 0; i < 400; ++i) {
    auto txn = primary_->db->begin();
    ASSERT_TRUE(txn.is_ok());
    ASSERT_TRUE(primary_->db
                    ->insert(txn.value(), primary_->table,
                             row("r" + std::to_string(i)))
                    .is_ok());
    auto lsn = primary_->db->commit(txn.value());
    ASSERT_TRUE(lsn.is_ok());
    commit_lsns.push_back(lsn.value());
  }
  // Primary dies.
  ASSERT_TRUE(primary_->db->shutdown_abort().is_ok());

  auto report = standby_->activate();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(standby_->active());
  EXPECT_TRUE(standby_->db().is_open());

  // Exactly the transactions whose commit LSN is below the applied horizon
  // survive — the unarchived tail is lost (paper Figure 7).
  std::uint64_t expect_survivors = 0;
  for (Lsn lsn : commit_lsns) {
    if (lsn <= report.value().recovered_to) expect_survivors += 1;
  }
  const auto rows =
      all_rows(standby_->db(), standby_->db().table_id("accounts").value());
  EXPECT_EQ(rows.size(), expect_survivors);
  EXPECT_GT(expect_survivors, 0u);
  EXPECT_LT(expect_survivors, commit_lsns.size());  // some tail was lost
}

TEST_F(StandbyTest, ActivatedStandbyAcceptsNewWork) {
  for (int i = 0; i < 200; ++i) {
    put_row(*primary_->db, primary_->table, "x");
  }
  ASSERT_TRUE(primary_->db->shutdown_abort().is_ok());
  ASSERT_TRUE(standby_->activate().is_ok());

  auto table = standby_->db().table_id("accounts");
  ASSERT_TRUE(table.is_ok());
  const RowId rid = put_row(standby_->db(), table.value(), "after-failover");
  auto txn = standby_->db().begin();
  EXPECT_TRUE(standby_->db().read(txn.value(), table.value(), rid).is_ok());
  ASSERT_TRUE(standby_->db().commit(txn.value()).is_ok());
}

TEST_F(StandbyTest, ActivationTakesBoundedTime) {
  for (int i = 0; i < 200; ++i) {
    put_row(*primary_->db, primary_->table, "x");
  }
  ASSERT_TRUE(primary_->db->shutdown_abort().is_ok());
  const SimTime before = env_.clock.now();
  ASSERT_TRUE(standby_->activate().is_ok());
  const SimDuration took = env_.clock.now() - before;
  // Activation cost dominates; it must be quick and independent of the
  // volume of earlier redo (the standby already applied it).
  EXPECT_GE(took, 12 * kSecond);  // configured activation cost
  EXPECT_LT(took, 60 * kSecond);
}

TEST_F(StandbyTest, ShippingStopsAfterActivation) {
  for (int i = 0; i < 200; ++i) put_row(*primary_->db, primary_->table, "x");
  ASSERT_TRUE(primary_->db->shutdown_abort().is_ok());
  ASSERT_TRUE(standby_->activate().is_ok());
  const auto before = standby_->archives_applied();
  standby_->on_primary_archive(env_.host.fs(), "/arch/bogus", 999, 0);
  EXPECT_EQ(standby_->archives_applied(), before);
}

}  // namespace
}  // namespace vdb::standby
