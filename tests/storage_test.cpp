#include <gtest/gtest.h>

#include "sim/host.hpp"
#include "storage/storage_manager.hpp"
#include "storage/table_heap.hpp"

namespace vdb::storage {
namespace {

class StorageManagerTest : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  sim::Host host_{"h", &clock_};
  std::unique_ptr<StorageManager> sm_;
  Lsn flushed_ = 0;

  void SetUp() override {
    host_.add_disk("/data");
    StorageParams params;
    params.cache_pages = 64;
    params.extent_blocks = 4;
    sm_ = std::make_unique<StorageManager>(
        &host_.fs(), params, [this](Lsn lsn) { flushed_ = lsn; });
  }

  TablespaceId make_ts(std::uint32_t max_blocks = 0) {
    auto ts = sm_->create_tablespace("TS", true, max_blocks);
    VDB_CHECK(ts.is_ok());
    VDB_CHECK(sm_->add_datafile(ts.value(), "/data/f1.dbf", 8).is_ok());
    return ts.value();
  }
};

TEST_F(StorageManagerTest, CreateTablespaceAndFile) {
  const TablespaceId ts = make_ts();
  auto info = sm_->tablespace_info(ts);
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value()->name, "TS");
  EXPECT_EQ(info.value()->files.size(), 1u);
  EXPECT_EQ(host_.fs().size("/data/f1.dbf").value(), 8 * Page::kSize);
}

TEST_F(StorageManagerTest, DuplicateTablespaceRejected) {
  make_ts();
  EXPECT_EQ(sm_->create_tablespace("TS").code(), ErrorCode::kAlreadyExists);
}

TEST_F(StorageManagerTest, ReserveFormatsAdvanceHighWater) {
  const TablespaceId ts = make_ts();
  auto p1 = sm_->reserve_page(ts);
  ASSERT_TRUE(p1.is_ok());
  EXPECT_EQ(p1.value().block, 0u);
  // Without apply_format the high-water mark must not move.
  auto p1_again = sm_->reserve_page(ts);
  ASSERT_TRUE(p1_again.is_ok());
  EXPECT_EQ(p1_again.value(), p1.value());

  ASSERT_TRUE(sm_->apply_format(p1.value(), TableId{1}, 32, 100).is_ok());
  auto p2 = sm_->reserve_page(ts);
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p2.value().block, 1u);
}

TEST_F(StorageManagerTest, AutoextendGrowsFile) {
  const TablespaceId ts = make_ts();
  for (std::uint32_t b = 0; b < 10; ++b) {  // beyond the 8 initial blocks
    auto pid = sm_->reserve_page(ts);
    ASSERT_TRUE(pid.is_ok()) << b;
    ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{1}, 32, b + 1).is_ok());
  }
  auto info = sm_->file_info(FileId{0});
  ASSERT_TRUE(info.is_ok());
  EXPECT_GT(info.value()->blocks, 8u);
}

TEST_F(StorageManagerTest, MaxBlocksEnforced) {
  const TablespaceId ts = make_ts(/*max_blocks=*/8);
  for (std::uint32_t b = 0; b < 8; ++b) {
    auto pid = sm_->reserve_page(ts);
    ASSERT_TRUE(pid.is_ok());
    ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{1}, 32, b + 1).is_ok());
  }
  EXPECT_EQ(sm_->reserve_page(ts).code(), ErrorCode::kOutOfSpace);
}

TEST_F(StorageManagerTest, RoundRobinAcrossFiles) {
  auto ts = sm_->create_tablespace("RR");
  ASSERT_TRUE(ts.is_ok());
  ASSERT_TRUE(sm_->add_datafile(ts.value(), "/data/a.dbf", 8).is_ok());
  ASSERT_TRUE(sm_->add_datafile(ts.value(), "/data/b.dbf", 8).is_ok());
  auto p1 = sm_->reserve_page(ts.value());
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(sm_->apply_format(p1.value(), TableId{1}, 32, 1).is_ok());
  auto p2 = sm_->reserve_page(ts.value());
  ASSERT_TRUE(p2.is_ok());
  EXPECT_NE(p1.value().file, p2.value().file);
}

TEST_F(StorageManagerTest, PageRoundtripThroughCacheAndDisk) {
  const TablespaceId ts = make_ts();
  auto pid = sm_->reserve_page(ts);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{5}, 32, 7).is_ok());
  {
    auto ref = sm_->fetch(pid.value());
    ASSERT_TRUE(ref.is_ok());
    ref.value()->set_slot(0, std::vector<std::uint8_t>{1, 2, 3});
    ref.value()->set_lsn(8);
    sm_->mark_dirty(pid.value());
  }
  sm_->cache().checkpoint();
  sm_->cache().discard_all();
  auto ref = sm_->fetch(pid.value());
  ASSERT_TRUE(ref.is_ok());
  EXPECT_EQ(ref.value()->owner(), TableId{5});
  EXPECT_EQ(ref.value()->lsn(), 8u);
  auto slot = ref.value()->read_slot(0);
  ASSERT_TRUE(slot.is_ok());
  EXPECT_EQ(slot.value()[2], 3);
}

TEST_F(StorageManagerTest, ChecksumCorruptionDetectedOnLoad) {
  const TablespaceId ts = make_ts();
  auto pid = sm_->reserve_page(ts);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{5}, 32, 7).is_ok());
  sm_->cache().checkpoint();
  sm_->cache().discard_all();
  // Flip a byte in the on-disk page body.
  std::vector<std::uint8_t> garbage{0x5A};
  ASSERT_TRUE(host_.fs()
                  .write("/data/f1.dbf", 100, garbage,
                         sim::IoMode::kBackground)
                  .is_ok());
  EXPECT_EQ(sm_->fetch(pid.value()).code(), ErrorCode::kCorruption);
}

TEST_F(StorageManagerTest, OfflineBlocksAccess) {
  const TablespaceId ts = make_ts();
  auto pid = sm_->reserve_page(ts);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{1}, 32, 1).is_ok());
  sm_->cache().checkpoint();
  sm_->cache().discard_all();

  ASSERT_TRUE(sm_->set_datafile_offline(FileId{0}, 123).is_ok());
  EXPECT_EQ(sm_->fetch(pid.value()).code(), ErrorCode::kOffline);
  // Recovery mode lifts the restriction (media recovery path).
  sm_->set_recovery_mode(true);
  EXPECT_TRUE(sm_->fetch(pid.value()).is_ok());
  sm_->set_recovery_mode(false);

  // Online requires the recovery marker to be cleared first.
  EXPECT_EQ(sm_->set_datafile_online(FileId{0}).code(),
            ErrorCode::kRecoveryRequired);
  ASSERT_TRUE(sm_->set_recover_from(FileId{0}, kInvalidLsn).is_ok());
  EXPECT_TRUE(sm_->set_datafile_online(FileId{0}).is_ok());
  EXPECT_TRUE(sm_->fetch(pid.value()).is_ok());
}

TEST_F(StorageManagerTest, CleanOfflineNeedsNoRecovery) {
  const TablespaceId ts = make_ts();
  (void)ts;
  ASSERT_TRUE(
      sm_->set_datafile_offline(FileId{0}, 123, /*clean=*/true).is_ok());
  EXPECT_TRUE(sm_->set_datafile_online(FileId{0}).is_ok());
}

TEST_F(StorageManagerTest, MissingFileDetected) {
  const TablespaceId ts = make_ts();
  auto pid = sm_->reserve_page(ts);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{1}, 32, 1).is_ok());
  sm_->cache().checkpoint();
  sm_->cache().discard_all();
  ASSERT_TRUE(host_.fs().remove("/data/f1.dbf").is_ok());
  EXPECT_EQ(sm_->fetch(pid.value()).code(), ErrorCode::kMediaFailure);
  EXPECT_EQ(sm_->file_info(FileId{0}).value()->status, FileStatus::kMissing);
}

TEST_F(StorageManagerTest, DropTablespaceDeletesFiles) {
  const TablespaceId ts = make_ts();
  ASSERT_TRUE(sm_->drop_tablespace(ts, /*delete_files=*/true).is_ok());
  EXPECT_FALSE(host_.fs().exists("/data/f1.dbf"));
  EXPECT_EQ(sm_->tablespace_info(ts).code(), ErrorCode::kNotFound);
  EXPECT_EQ(sm_->reserve_page(ts).code(), ErrorCode::kNotFound);
}

TEST_F(StorageManagerTest, ScanFileVisitsFormattedPages) {
  const TablespaceId ts = make_ts();
  for (int i = 0; i < 3; ++i) {
    auto pid = sm_->reserve_page(ts);
    ASSERT_TRUE(pid.is_ok());
    ASSERT_TRUE(
        sm_->apply_format(pid.value(), TableId{7}, 32, i + 1).is_ok());
  }
  sm_->cache().checkpoint();
  int visited = 0;
  ASSERT_TRUE(sm_->scan_file(FileId{0}, [&](std::uint32_t, const Page& page) {
                  EXPECT_EQ(page.owner(), TableId{7});
                  visited += 1;
                }).is_ok());
  EXPECT_EQ(visited, 3);
}

TEST_F(StorageManagerTest, SyncFileSizeClampsMetadata) {
  const TablespaceId ts = make_ts();
  for (int i = 0; i < 10; ++i) {
    auto pid = sm_->reserve_page(ts);
    ASSERT_TRUE(pid.is_ok());
    ASSERT_TRUE(sm_->apply_format(pid.value(), TableId{1}, 32, i + 1).is_ok());
  }
  // Simulate a restore with an older, shorter image.
  ASSERT_TRUE(host_.fs().truncate("/data/f1.dbf", 4 * Page::kSize).is_ok());
  ASSERT_TRUE(sm_->sync_file_size(FileId{0}).is_ok());
  auto info = sm_->file_info(FileId{0});
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value()->blocks, 4u);
  EXPECT_LE(info.value()->high_water, 4u);
}

TEST_F(StorageManagerTest, SetHighWaterOnlyRaises) {
  make_ts();
  sm_->set_high_water(FileId{0}, 5);
  EXPECT_EQ(sm_->file_info(FileId{0}).value()->high_water, 5u);
  sm_->set_high_water(FileId{0}, 3);
  EXPECT_EQ(sm_->file_info(FileId{0}).value()->high_water, 5u);
}

class TableHeapTest : public StorageManagerTest {
 protected:
  TablespaceId ts_{};
  std::unique_ptr<TableHeap> heap_;

  void SetUp() override {
    StorageManagerTest::SetUp();
    ts_ = make_ts();
    heap_ = std::make_unique<TableHeap>(sm_.get(), TableId{1}, ts_, 32);
  }

  RowId insert(const std::string& value, Lsn lsn) {
    auto slot = heap_->choose_insert_slot();
    VDB_CHECK(slot.is_ok());
    if (slot.value().needs_format) {
      VDB_CHECK(sm_->apply_format(slot.value().rid.page, TableId{1}, 32, lsn)
                    .is_ok());
      heap_->adopt_page(slot.value().rid.page);
    }
    std::vector<std::uint8_t> bytes(value.begin(), value.end());
    VDB_CHECK(heap_->apply_insert(slot.value().rid, bytes, lsn).is_ok());
    return slot.value().rid;
  }
};

TEST_F(TableHeapTest, InsertReadUpdateDelete) {
  const RowId rid = insert("hello", 1);
  auto read = heap_->read(rid);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(std::string(read.value().begin(), read.value().end()), "hello");

  std::vector<std::uint8_t> updated{'b', 'y', 'e'};
  ASSERT_TRUE(heap_->apply_update(rid, updated, 2).is_ok());
  EXPECT_EQ(heap_->read(rid).value(), updated);

  ASSERT_TRUE(heap_->apply_delete(rid, 3).is_ok());
  EXPECT_EQ(heap_->read(rid).code(), ErrorCode::kNotFound);
  EXPECT_EQ(heap_->row_count(), 0u);
}

TEST_F(TableHeapTest, FreedSlotsAreReused) {
  const RowId rid = insert("a", 1);
  ASSERT_TRUE(heap_->apply_delete(rid, 2).is_ok());
  const RowId rid2 = insert("b", 3);
  EXPECT_EQ(rid, rid2);
}

TEST_F(TableHeapTest, ScanVisitsAllRows) {
  for (int i = 0; i < 500; ++i) insert("row" + std::to_string(i), i + 1);
  EXPECT_EQ(heap_->row_count(), 500u);
  int count = 0;
  ASSERT_TRUE(heap_->scan([&](RowId, std::span<const std::uint8_t>) {
                 count += 1;
                 return true;
               }).is_ok());
  EXPECT_EQ(count, 500);
  EXPECT_GT(heap_->pages().size(), 1u);
}

TEST_F(TableHeapTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) insert("x", i + 1);
  int count = 0;
  ASSERT_TRUE(heap_->scan([&](RowId, std::span<const std::uint8_t>) {
                 count += 1;
                 return count < 3;
               }).is_ok());
  EXPECT_EQ(count, 3);
}

TEST_F(TableHeapTest, UpdateOfFreeSlotFails) {
  const RowId rid = insert("x", 1);
  ASSERT_TRUE(heap_->apply_delete(rid, 2).is_ok());
  std::vector<std::uint8_t> bytes{1};
  EXPECT_EQ(heap_->apply_update(rid, bytes, 3).code(), ErrorCode::kNotFound);
  EXPECT_EQ(heap_->apply_delete(rid, 3).code(), ErrorCode::kNotFound);
}

TEST_F(TableHeapTest, RegisterPageRebuild) {
  for (int i = 0; i < 100; ++i) insert("r" + std::to_string(i), i + 1);
  sm_->cache().checkpoint();
  const std::uint64_t rows_before = heap_->row_count();

  TableHeap rebuilt(sm_.get(), TableId{1}, ts_, 32);
  ASSERT_TRUE(sm_->scan_file(FileId{0}, [&](std::uint32_t block,
                                            const Page& page) {
                  if (page.owner() != TableId{1}) return;
                  rebuilt.register_page(PageId{FileId{0}, block},
                                        page.used_count() < page.capacity(),
                                        page.used_count());
                }).is_ok());
  EXPECT_EQ(rebuilt.row_count(), rows_before);
  // The rebuilt heap keeps inserting where space remains.
  auto slot = rebuilt.choose_insert_slot();
  ASSERT_TRUE(slot.is_ok());
  EXPECT_FALSE(slot.value().needs_format);
}

}  // namespace
}  // namespace vdb::storage
