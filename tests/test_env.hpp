// Shared test fixtures: a simulated machine and small-database helpers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/database.hpp"
#include "sim/host.hpp"
#include "sim/scheduler.hpp"

namespace vdb::testing {

/// One simulated machine with the standard four-disk layout.
struct SimEnv {
  sim::VirtualClock clock;
  sim::Scheduler sched{&clock};
  sim::Host host{"test", &clock};

  SimEnv() {
    host.add_disk("/data");
    host.add_disk("/redo");
    host.add_disk("/arch");
    host.add_disk("/backup");
  }
};

inline engine::DatabaseConfig small_db_config(bool archive = false) {
  engine::DatabaseConfig cfg;
  cfg.redo.file_size_bytes = 1 * 1024 * 1024;
  cfg.redo.groups = 3;
  cfg.redo.archive_mode = archive;
  cfg.checkpoint_timeout = 30 * kSecond;
  cfg.storage.cache_pages = 256;
  return cfg;
}

/// A fresh database with one USERS tablespace and an "accounts" table.
struct SmallDb {
  std::unique_ptr<engine::Database> db;
  TableId table{};
  UserId user{};

  explicit SmallDb(SimEnv& env,
                   engine::DatabaseConfig cfg = small_db_config()) {
    db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
    VDB_CHECK(db->create().is_ok());
    VDB_CHECK(
        db->create_tablespace("USERS", {{"/data/users01.dbf", 64}}).is_ok());
    auto u = db->create_user("APP", false);
    VDB_CHECK(u.is_ok());
    user = u.value();
    auto t = db->create_table("accounts", "USERS", 64, user);
    VDB_CHECK(t.is_ok());
    table = t.value();
  }
};

inline std::vector<std::uint8_t> row(const std::string& s) {
  return {s.begin(), s.end()};
}

inline std::string row_str(std::span<const std::uint8_t> bytes) {
  return {bytes.begin(), bytes.end()};
}

/// Inserts a row in its own committed transaction; returns its RowId.
inline RowId put_row(engine::Database& db, TableId table,
                     const std::string& value) {
  auto txn = db.begin();
  VDB_CHECK(txn.is_ok());
  auto rid = db.insert(txn.value(), table, row(value));
  VDB_CHECK_MSG(rid.is_ok(), rid.status().to_string());
  VDB_CHECK(db.commit(txn.value()).is_ok());
  return rid.value();
}

/// All live rows of a table as strings (scan order).
inline std::vector<std::string> all_rows(engine::Database& db, TableId table) {
  std::vector<std::string> out;
  VDB_CHECK(db.scan(table, [&](RowId, std::span<const std::uint8_t> bytes) {
                out.push_back(row_str(bytes));
                return true;
              }).is_ok());
  return out;
}

}  // namespace vdb::testing
