#include <gtest/gtest.h>

#include "tests/test_env.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_driver.hpp"
#include "tpcc/tpcc_loader.hpp"
#include "tpcc/tpcc_random.hpp"
#include "tpcc/tpcc_txns.hpp"

namespace vdb::tpcc {
namespace {

using testing::SimEnv;
using testing::small_db_config;

TEST(TpccSchema, RowCodecsRoundtrip) {
  CustomerRow c;
  c.c_id = 5;
  c.c_d_id = 3;
  c.c_w_id = 1;
  c.c_first = "First";
  c.c_middle = "OE";
  c.c_last = "BARBARBAR";
  c.c_credit = "BC";
  c.c_balance = -42.5;
  c.c_data = std::string(500, 'd');
  const auto bytes = to_bytes(c);
  EXPECT_LE(bytes.size(), CustomerRow::kSlotSize);
  const auto back = from_bytes<CustomerRow>(bytes);
  EXPECT_EQ(back.c_last, "BARBARBAR");
  EXPECT_DOUBLE_EQ(back.c_balance, -42.5);
  EXPECT_EQ(back.c_data.size(), 500u);

  StockRow s;
  s.s_i_id = 7;
  s.s_w_id = 2;
  s.s_quantity = -3;  // can go below zero per spec arithmetic
  for (auto& d : s.s_dist) d = std::string(24, 'x');
  s.s_data = std::string(50, 'y');
  const auto sbytes = to_bytes(s);
  EXPECT_LE(sbytes.size(), StockRow::kSlotSize);
  const auto sback = from_bytes<StockRow>(sbytes);
  EXPECT_EQ(sback.s_quantity, -3);
  EXPECT_EQ(sback.s_dist[9].size(), 24u);

  OrderRow o;
  o.o_id = 1;
  o.o_carrier_id = -1;
  o.o_ol_cnt = 15;
  const auto oback = from_bytes<OrderRow>(to_bytes(o));
  EXPECT_EQ(oback.o_carrier_id, -1);
  EXPECT_EQ(oback.o_ol_cnt, 15);
}

TEST(TpccSchema, MaximalRowsFitSlots) {
  // Worst-case string fields must fit the declared slot sizes.
  WarehouseRow w;
  w.w_name = std::string(10, 'x');
  w.w_street_1 = w.w_street_2 = w.w_city = std::string(20, 'x');
  w.w_state = "XX";
  w.w_zip = "123456789";
  EXPECT_LE(to_bytes(w).size(), WarehouseRow::kSlotSize);

  OrderLineRow ol;
  ol.ol_dist_info = std::string(24, 'x');
  EXPECT_LE(to_bytes(ol).size(), OrderLineRow::kSlotSize);

  ItemRow item;
  item.i_name = std::string(24, 'x');
  item.i_data = std::string(50, 'x');
  EXPECT_LE(to_bytes(item).size(), ItemRow::kSlotSize);

  HistoryRow h;
  h.h_data = std::string(24, 'x');
  EXPECT_LE(to_bytes(h).size(), HistoryRow::kSlotSize);
}

TEST(TpccRandom, LastNameSyllables) {
  TpccRandom tr(Rng{1}, TpccScale{});
  EXPECT_EQ(tr.last_name(0), "BARBARBAR");
  EXPECT_EQ(tr.last_name(371), "PRICALLYOUGHT");
  EXPECT_EQ(tr.last_name(999), "EINGEINGEING");
}

TEST(TpccRandom, GeneratorsRespectScale) {
  TpccScale scale;
  scale.warehouses = 3;
  scale.customers_per_district = 50;
  scale.items = 100;
  TpccRandom tr(Rng{2}, scale);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(tr.nurand_customer_id(), 50u);
    EXPECT_GE(tr.nurand_customer_id(), 1u);
    EXPECT_LE(tr.nurand_item_id(), 100u);
    EXPECT_GE(tr.nurand_item_id(), 1u);
    EXPECT_LE(tr.warehouse_id(), 3u);
    EXPECT_GE(tr.warehouse_id(), 1u);
    EXPECT_LE(tr.district_id(), 10u);
  }
}

/// Full TPC-C environment on a small scale.
class TpccFixture : public ::testing::Test {
 protected:
  SimEnv env_;
  engine::DatabaseConfig cfg_;
  std::unique_ptr<engine::Database> db_;
  TpccScale scale_;
  std::unique_ptr<TpccDb> tdb_;

  void SetUp() override {
    cfg_ = small_db_config();
    cfg_.redo.file_size_bytes = 2 * 1024 * 1024;
    cfg_.storage.cache_pages = 1024;
    scale_.warehouses = 1;
    scale_.customers_per_district = 30;
    scale_.items = 200;
    scale_.initial_orders_per_district = 30;

    db_ = std::make_unique<engine::Database>(&env_.host, &env_.sched, cfg_);
    ASSERT_TRUE(db_->create().is_ok());
    ASSERT_TRUE(db_->create_tablespace("TPCC", {{"/data/tpcc01.dbf", 256},
                                                {"/data/tpcc02.dbf", 256}})
                    .is_ok());
    auto user = db_->create_user("TPCC", false);
    ASSERT_TRUE(user.is_ok());
    tdb_ = std::make_unique<TpccDb>(scale_);
    ASSERT_TRUE(tdb_->create_schema(*db_, "TPCC", user.value()).is_ok());
    ASSERT_TRUE(tdb_->attach(db_.get()).is_ok());
    Loader loader(tdb_.get(), 99);
    auto stats = loader.load();
    ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  }
};

TEST_F(TpccFixture, LoaderPopulatesSpecCardinalities) {
  auto count = [&](Tbl t) {
    std::uint64_t n = 0;
    VDB_CHECK(db_->scan(tdb_->table(t),
                        [&](RowId, std::span<const std::uint8_t>) {
                          n += 1;
                          return true;
                        })
                  .is_ok());
    return n;
  };
  EXPECT_EQ(count(Tbl::kWarehouse), 1u);
  EXPECT_EQ(count(Tbl::kDistrict), 10u);
  EXPECT_EQ(count(Tbl::kCustomer), 300u);   // 30 × 10 districts
  EXPECT_EQ(count(Tbl::kHistory), 300u);
  EXPECT_EQ(count(Tbl::kItem), 200u);
  EXPECT_EQ(count(Tbl::kStock), 200u);
  EXPECT_EQ(count(Tbl::kOrder), 300u);
  EXPECT_EQ(count(Tbl::kNewOrder), 90u);    // 30% undelivered
  EXPECT_GT(count(Tbl::kOrderLine), 300u * 5);
}

TEST_F(TpccFixture, IndexesMatchHeapAfterLoad) {
  // Every order row is reachable through its index.
  std::uint64_t checked = 0;
  ASSERT_TRUE(db_->scan(tdb_->table(Tbl::kOrder),
                        [&](RowId rid, std::span<const std::uint8_t> bytes) {
                          auto r = from_bytes<OrderRow>(bytes);
                          auto idx =
                              tdb_->order_rid(r.o_w_id, r.o_d_id, r.o_id);
                          EXPECT_TRUE(idx.has_value());
                          if (idx) EXPECT_EQ(*idx, rid);
                          checked += 1;
                          return true;
                        })
                  .is_ok());
  EXPECT_EQ(checked, 300u);
}

TEST_F(TpccFixture, InitialStateIsConsistent) {
  ConsistencyChecker checker(tdb_.get());
  auto report = checker.run_all();
  ASSERT_TRUE(report.is_ok());
  for (const auto& msg : report.value().messages) ADD_FAILURE() << msg;
  EXPECT_EQ(report.value().violations, 0u);
  EXPECT_GE(report.value().checks_run, 7u);
}

TEST_F(TpccFixture, CustomersByNameOrderedById) {
  // Pick a known customer and look it up by name.
  auto rid = tdb_->customer_rid(1, 1, 1);
  ASSERT_TRUE(rid.has_value());
  auto txn = db_->begin();
  auto cust = tdb_->read_row<CustomerRow>(txn.value(), Tbl::kCustomer, *rid);
  ASSERT_TRUE(cust.is_ok());
  ASSERT_TRUE(db_->commit(txn.value()).is_ok());

  auto matches = tdb_->customers_by_name(1, 1, cust.value().c_last);
  ASSERT_FALSE(matches.empty());
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LT(matches[i - 1].first, matches[i].first);
  }
}

TEST_F(TpccFixture, EachTransactionTypeExecutes) {
  TpccRandom random(Rng{7}, scale_);
  TpccTxns txns(tdb_.get(), &random);
  for (TxnType type : {TxnType::kNewOrder, TxnType::kPayment,
                       TxnType::kOrderStatus, TxnType::kDelivery,
                       TxnType::kStockLevel}) {
    auto outcome = txns.run(type, 1);
    ASSERT_TRUE(outcome.is_ok())
        << to_string(type) << ": " << outcome.status().to_string();
    EXPECT_TRUE(outcome.value().committed ||
                outcome.value().intentional_rollback);
  }
}

TEST_F(TpccFixture, NewOrderAdvancesDistrictAndStock) {
  auto d_rid = tdb_->district_rid(1, 1);
  ASSERT_TRUE(d_rid.has_value());
  auto txn0 = db_->begin();
  const auto before =
      tdb_->read_row<DistrictRow>(txn0.value(), Tbl::kDistrict, *d_rid);
  ASSERT_TRUE(db_->commit(txn0.value()).is_ok());

  TpccRandom random(Rng{8}, scale_);
  TpccTxns txns(tdb_.get(), &random);
  int committed = 0;
  for (int i = 0; i < 40; ++i) {
    auto outcome = txns.new_order(1);
    ASSERT_TRUE(outcome.is_ok());
    if (outcome.value().committed) committed += 1;
  }
  EXPECT_GT(committed, 30);

  auto txn1 = db_->begin();
  const auto after =
      tdb_->read_row<DistrictRow>(txn1.value(), Tbl::kDistrict, *d_rid);
  ASSERT_TRUE(db_->commit(txn1.value()).is_ok());
  EXPECT_GT(after.value().d_next_o_id, before.value().d_next_o_id);
}

TEST_F(TpccFixture, WorkloadStaysConsistent) {
  Driver driver(tdb_.get(), &env_.sched, DriverConfig{31, 10 * kSecond});
  const SimTime start = env_.clock.now();
  ASSERT_TRUE(driver.run_until(start + 60 * kSecond).is_ok());
  EXPECT_GT(driver.stats().committed, 100u);

  ConsistencyChecker checker(tdb_.get());
  auto report = checker.run_all();
  ASSERT_TRUE(report.is_ok());
  for (const auto& msg : report.value().messages) ADD_FAILURE() << msg;
  EXPECT_EQ(report.value().violations, 0u);
}

TEST_F(TpccFixture, DriverMixApproximatesSpec) {
  Driver driver(tdb_.get(), &env_.sched, DriverConfig{41, 10 * kSecond});
  const SimTime start = env_.clock.now();
  ASSERT_TRUE(driver.run_until(start + 120 * kSecond).is_ok());
  const auto& stats = driver.stats();
  const double total = static_cast<double>(stats.committed);
  ASSERT_GT(total, 500);
  const double new_order_share =
      static_cast<double>(
          stats.committed_by_type[static_cast<size_t>(TxnType::kNewOrder)]) /
      total;
  const double payment_share =
      static_cast<double>(
          stats.committed_by_type[static_cast<size_t>(TxnType::kPayment)]) /
      total;
  EXPECT_NEAR(new_order_share, 10.0 / 23.0, 0.05);
  EXPECT_NEAR(payment_share, 10.0 / 23.0, 0.05);
}

TEST_F(TpccFixture, DriverRecordsCommitLsns) {
  Driver driver(tdb_.get(), &env_.sched, DriverConfig{51, 10 * kSecond});
  const SimTime start = env_.clock.now();
  ASSERT_TRUE(driver.run_until(start + 20 * kSecond).is_ok());
  ASSERT_FALSE(driver.commits().empty());
  // Write transactions carry increasing commit LSNs.
  Lsn last = 0;
  for (const auto& commit : driver.commits()) {
    if (commit.commit_lsn == 0) continue;  // read-only
    EXPECT_GT(commit.commit_lsn, last);
    last = commit.commit_lsn;
  }
  EXPECT_GT(last, 0u);
  // count_lost: everything above an LSN in the middle is "lost".
  const Lsn mid = last / 2;
  EXPECT_GT(driver.count_lost(mid, env_.clock.now()), 0u);
  EXPECT_EQ(driver.count_lost(last, env_.clock.now()), 0u);
}

TEST_F(TpccFixture, ConsistencyCheckerDetectsSeededCorruption) {
  // Corrupt one warehouse ytd and verify the checker notices.
  auto w_rid = tdb_->warehouse_rid(1);
  ASSERT_TRUE(w_rid.has_value());
  auto txn = db_->begin();
  auto wh = tdb_->read_row<WarehouseRow>(txn.value(), Tbl::kWarehouse, *w_rid);
  ASSERT_TRUE(wh.is_ok());
  WarehouseRow bad = wh.value();
  bad.w_ytd += 1234.0;
  ASSERT_TRUE(tdb_->update_row(txn.value(), Tbl::kWarehouse, *w_rid, bad)
                  .is_ok());
  ASSERT_TRUE(db_->commit(txn.value()).is_ok());

  ConsistencyChecker checker(tdb_.get());
  auto report = checker.run_all();
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().violations, 0u);
}

TEST_F(TpccFixture, ConsistencyCheckerDetectsLostOrderLine) {
  // Remove one order line behind the benchmark's back.
  std::optional<RowId> victim;
  ASSERT_TRUE(db_->scan(tdb_->table(Tbl::kOrderLine),
                        [&](RowId rid, std::span<const std::uint8_t>) {
                          victim = rid;
                          return false;
                        })
                  .is_ok());
  ASSERT_TRUE(victim.has_value());
  auto txn = db_->begin();
  ASSERT_TRUE(db_->erase(txn.value(), tdb_->table(Tbl::kOrderLine), *victim)
                  .is_ok());
  ASSERT_TRUE(db_->commit(txn.value()).is_ok());

  ConsistencyChecker checker(tdb_.get());
  auto report = checker.run_all();
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().violations, 0u);
}

}  // namespace
}  // namespace vdb::tpcc
