#include <gtest/gtest.h>

#include "txn/lock_manager.hpp"
#include "txn/txn_manager.hpp"

namespace vdb::txn {
namespace {

LockTarget row(std::uint32_t table, std::uint32_t block, std::uint16_t slot) {
  return LockTarget::for_row(TableId{table},
                             RowId{PageId{FileId{0}, block}, slot});
}

TEST(LockManager, GrantAndRelease) {
  LockManager lm;
  EXPECT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  EXPECT_TRUE(lm.holds(TxnId{1}, row(1, 1, 1), LockMode::kExclusive));
  lm.release_all(TxnId{1});
  EXPECT_FALSE(lm.holds(TxnId{1}, row(1, 1, 1), LockMode::kExclusive));
  EXPECT_EQ(lm.locked_count(), 0u);
}

TEST(LockManager, SharedLocksCompatible) {
  LockManager lm;
  EXPECT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kShared).is_ok());
  EXPECT_TRUE(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kShared).is_ok());
  EXPECT_TRUE(lm.holds(TxnId{1}, row(1, 1, 1), LockMode::kShared));
  EXPECT_TRUE(lm.holds(TxnId{2}, row(1, 1, 1), LockMode::kShared));
}

TEST(LockManager, ExclusiveConflicts) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  // Older requester (id 0 < 1): allowed to wait → timeout.
  EXPECT_EQ(lm.acquire(TxnId{0}, row(1, 1, 1), LockMode::kExclusive).code(),
            ErrorCode::kLockTimeout);
  // Younger requester (id 2 > 1): wait-die → deadlock abort.
  EXPECT_EQ(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kExclusive).code(),
            ErrorCode::kDeadlock);
  EXPECT_EQ(lm.stats().deadlock_aborts, 1u);
}

TEST(LockManager, Reacquisition) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  EXPECT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  EXPECT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kShared).is_ok());
}

TEST(LockManager, UpgradeBySoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kShared).is_ok());
  EXPECT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  EXPECT_TRUE(lm.holds(TxnId{1}, row(1, 1, 1), LockMode::kExclusive));
}

TEST(LockManager, UpgradeBlockedByOtherReaders) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kShared).is_ok());
  ASSERT_TRUE(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kShared).is_ok());
  EXPECT_EQ(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kExclusive).code(),
            ErrorCode::kLockTimeout);
}

TEST(LockManager, SharedBlockedByExclusive) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{5}, row(1, 1, 1), LockMode::kExclusive).is_ok());
  EXPECT_EQ(lm.acquire(TxnId{9}, row(1, 1, 1), LockMode::kShared).code(),
            ErrorCode::kDeadlock);  // younger
}

TEST(LockManager, TableAndRowAreDistinctResources) {
  LockManager lm;
  ASSERT_TRUE(
      lm.acquire(TxnId{1}, LockTarget::for_table(TableId{1}),
                 LockMode::kExclusive)
          .is_ok());
  EXPECT_TRUE(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kExclusive).is_ok());
}

TEST(LockManager, ReleaseFreesOnlyOwnLocks) {
  LockManager lm;
  ASSERT_TRUE(lm.acquire(TxnId{1}, row(1, 1, 1), LockMode::kShared).is_ok());
  ASSERT_TRUE(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kShared).is_ok());
  lm.release_all(TxnId{1});
  EXPECT_TRUE(lm.holds(TxnId{2}, row(1, 1, 1), LockMode::kShared));
  // Now txn 2 is the sole holder: it can upgrade.
  EXPECT_TRUE(lm.acquire(TxnId{2}, row(1, 1, 1), LockMode::kExclusive).is_ok());
}

wal::UndoOp make_op(size_t bytes) {
  wal::UndoOp op;
  op.lsn = 1;
  op.op = wal::LogRecordType::kInsert;
  op.change.after.assign(bytes, 0xAB);
  return op;
}

TEST(TxnManager, BeginAssignsIncreasingIds) {
  TxnManager tm;
  auto a = tm.begin();
  auto b = tm.begin();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_LT(a.value().value, b.value().value);
  EXPECT_EQ(tm.active_count(), 2u);
}

TEST(TxnManager, CommitReleasesUndoSpace) {
  TxnManager tm(RollbackSegmentConfig{2, 1024 * 1024, true});
  auto txn = tm.begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(tm.record_op(txn.value(), make_op(100)).is_ok());
  const auto& seg =
      tm.segments()[tm.get(txn.value()).value()->rollback_segment];
  EXPECT_GT(seg.used, 0u);
  ASSERT_TRUE(tm.mark_committed(txn.value(), 500).is_ok());
  EXPECT_EQ(tm.active_count(), 0u);
  for (const auto& s : tm.segments()) EXPECT_EQ(s.used, 0u);
}

TEST(TxnManager, RollbackSegmentExhaustion) {
  TxnManager tm(RollbackSegmentConfig{1, 1000, true});
  auto txn = tm.begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(tm.record_op(txn.value(), make_op(500)).is_ok());
  EXPECT_EQ(tm.record_op(txn.value(), make_op(500)).code(),
            ErrorCode::kOutOfSpace);
}

TEST(TxnManager, NoOnlineSegmentsBlocksBegin) {
  TxnManager tm(RollbackSegmentConfig{2, 1024, true});
  ASSERT_TRUE(tm.set_segment_offline(0).is_ok());
  ASSERT_TRUE(tm.set_segment_offline(1).is_ok());
  EXPECT_EQ(tm.begin().code(), ErrorCode::kOffline);
  ASSERT_TRUE(tm.set_segment_online(0).is_ok());
  EXPECT_TRUE(tm.begin().is_ok());
}

TEST(TxnManager, SegmentsBalanceActiveTxns) {
  TxnManager tm(RollbackSegmentConfig{4, 1024, true});
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(tm.begin().is_ok());
  for (const auto& seg : tm.segments()) EXPECT_EQ(seg.active_txns, 2u);
}

TEST(TxnManager, SnapshotContainsActiveOps) {
  TxnManager tm;
  auto a = tm.begin();
  auto b = tm.begin();
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  ASSERT_TRUE(tm.record_op(a.value(), make_op(10)).is_ok());
  auto snaps = tm.snapshot_active();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].txn, a.value());
  EXPECT_EQ(snaps[0].ops.size(), 1u);
  EXPECT_EQ(snaps[1].ops.size(), 0u);
}

TEST(TxnManager, SnapshotSkipsEndLoggedTxns) {
  // Regression test for the recovery bug where a checkpoint taken inside a
  // commit's flush snapshot the committing transaction and recovery then
  // wrongly rolled back committed work.
  TxnManager tm;
  auto a = tm.begin();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(tm.record_op(a.value(), make_op(10)).is_ok());
  ASSERT_TRUE(tm.mark_end_logged(a.value()).is_ok());
  EXPECT_TRUE(tm.snapshot_active().empty());
  EXPECT_EQ(tm.active_count(), 1u);  // still active until mark_committed
}

TEST(TxnManager, RestoreNextIdMonotonic) {
  TxnManager tm;
  tm.restore_next_id(100);
  EXPECT_EQ(tm.begin().value().value, 100u);
  tm.restore_next_id(50);  // never goes backwards
  EXPECT_EQ(tm.begin().value().value, 101u);
}

TEST(TxnManager, ClearDropsEverything) {
  TxnManager tm;
  auto a = tm.begin();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(tm.record_op(a.value(), make_op(10)).is_ok());
  tm.clear();
  EXPECT_EQ(tm.active_count(), 0u);
  for (const auto& seg : tm.segments()) {
    EXPECT_EQ(seg.used, 0u);
    EXPECT_EQ(seg.active_txns, 0u);
  }
}

}  // namespace
}  // namespace vdb::txn
