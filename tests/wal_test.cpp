#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/host.hpp"
#include "wal/archiver.hpp"
#include "wal/log_record.hpp"
#include "wal/redo_log.hpp"

namespace vdb::wal {
namespace {

LogRecord roundtrip(const LogRecord& rec) {
  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  rec.encode(enc);
  Decoder dec(buf);
  auto back = LogRecord::decode(dec);
  VDB_CHECK(back.is_ok());
  return std::move(back).value();
}

TEST(LogRecord, DmlRoundtrip) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = TxnId{42};
  rec.lsn = 1234;
  rec.is_clr = true;
  rec.dml.table = TableId{7};
  rec.dml.rid = RowId{PageId{FileId{3}, 99}, 12};
  rec.dml.before = {1, 2, 3, 4, 5};
  rec.dml.after = {1, 2, 9, 4, 5};

  const LogRecord back = roundtrip(rec);
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.txn, rec.txn);
  EXPECT_EQ(back.lsn, rec.lsn);
  EXPECT_EQ(back.is_clr, rec.is_clr);
  EXPECT_EQ(back.dml.table, rec.dml.table);
  EXPECT_EQ(back.dml.rid, rec.dml.rid);
  EXPECT_EQ(back.dml.before, rec.dml.before);
  EXPECT_EQ(back.dml.after, rec.dml.after);
}

TEST(LogRecord, DeltaCompressionShrinksSimilarImages) {
  LogRecord similar;
  similar.type = LogRecordType::kUpdate;
  similar.dml.before.assign(400, 7);
  similar.dml.after = similar.dml.before;
  similar.dml.after[200] = 9;  // one byte differs

  LogRecord different;
  different.type = LogRecordType::kUpdate;
  different.dml.before.assign(400, 7);
  different.dml.after.assign(400, 9);

  // The shared bytes are stored once instead of twice.
  EXPECT_LT(similar.serialized_size(),
            different.serialized_size() * 6 / 10);
}

TEST(LogRecord, RandomImagesRoundtrip) {
  Rng rng(77);
  for (int iter = 0; iter < 300; ++iter) {
    LogRecord rec;
    rec.type = static_cast<LogRecordType>(rng.uniform(1, 3));
    rec.txn = TxnId{static_cast<std::uint64_t>(rng.uniform(0, 1 << 20))};
    rec.lsn = static_cast<Lsn>(rng.uniform(0, 1 << 30));
    rec.dml.table = TableId{static_cast<std::uint32_t>(rng.uniform(1, 99))};
    rec.dml.rid = RowId{
        PageId{FileId{static_cast<std::uint32_t>(rng.uniform(0, 3))},
               static_cast<std::uint32_t>(rng.uniform(0, 4000))},
        static_cast<std::uint16_t>(rng.uniform(0, 300))};
    // Random before/after with shared regions to exercise the delta codec.
    const auto len_b = static_cast<size_t>(rng.uniform(0, 200));
    const auto len_a = static_cast<size_t>(rng.uniform(0, 200));
    rec.dml.before.resize(len_b);
    rec.dml.after.resize(len_a);
    for (auto& b : rec.dml.before) b = static_cast<std::uint8_t>(rng.uniform(0, 3));
    for (auto& b : rec.dml.after) b = static_cast<std::uint8_t>(rng.uniform(0, 3));

    const LogRecord back = roundtrip(rec);
    EXPECT_EQ(back.dml.before, rec.dml.before);
    EXPECT_EQ(back.dml.after, rec.dml.after);
    EXPECT_EQ(back.dml.rid, rec.dml.rid);
  }
}

TEST(LogRecord, CheckpointRoundtrip) {
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.recovery_start_lsn = 5555;
  TxnSnapshot snap;
  snap.txn = TxnId{9};
  UndoOp op;
  op.lsn = 100;
  op.op = LogRecordType::kInsert;
  op.change.table = TableId{2};
  op.change.rid = RowId{PageId{FileId{0}, 1}, 2};
  op.change.after = {9, 9, 9};
  snap.ops.push_back(op);
  rec.active_txns.push_back(snap);

  const LogRecord back = roundtrip(rec);
  EXPECT_EQ(back.recovery_start_lsn, 5555u);
  ASSERT_EQ(back.active_txns.size(), 1u);
  EXPECT_EQ(back.active_txns[0].txn, TxnId{9});
  ASSERT_EQ(back.active_txns[0].ops.size(), 1u);
  EXPECT_EQ(back.active_txns[0].ops[0].lsn, 100u);
  EXPECT_EQ(back.active_txns[0].ops[0].change.after,
            (std::vector<std::uint8_t>{9, 9, 9}));
}

TEST(LogRecord, DdlRoundtrips) {
  LogRecord create;
  create.type = LogRecordType::kCreateTable;
  create.name = "orders";
  create.table_id = TableId{6};
  create.tablespace_id = TablespaceId{1};
  create.owner_user = UserId{2};
  create.ddl_slot_size = 48;
  const LogRecord back = roundtrip(create);
  EXPECT_EQ(back.name, "orders");
  EXPECT_EQ(back.table_id, TableId{6});
  EXPECT_EQ(back.ddl_slot_size, 48);

  LogRecord drop;
  drop.type = LogRecordType::kDropTablespace;
  drop.name = "TPCC";
  drop.tablespace_id = TablespaceId{1};
  const LogRecord back2 = roundtrip(drop);
  EXPECT_EQ(back2.type, LogRecordType::kDropTablespace);
  EXPECT_EQ(back2.name, "TPCC");
}

TEST(LogRecord, DecodeIntoResetsScratchAcrossTypes) {
  // parse_records decodes every record into one scratch LogRecord; a field
  // set by one record type must never leak into the next.
  LogRecord dml;
  dml.type = LogRecordType::kInsert;
  dml.txn = TxnId{5};
  dml.lsn = 50;
  dml.dml.table = TableId{3};
  dml.dml.rid = RowId{PageId{FileId{1}, 4}, 2};
  dml.dml.after = {1, 2, 3};

  LogRecord ddl;
  ddl.type = LogRecordType::kCreateTable;
  ddl.name = "leaky";
  ddl.table_id = TableId{8};
  ddl.ddl_slot_size = 32;

  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = TxnId{5};
  commit.lsn = 60;

  LogRecord scratch;
  std::vector<std::uint8_t> buf;
  Encoder enc1(&buf);
  ddl.encode(enc1);
  Decoder dec1(buf);
  ASSERT_TRUE(LogRecord::decode_into(dec1, &scratch).is_ok());
  EXPECT_EQ(scratch.name, "leaky");

  buf.clear();
  Encoder enc2(&buf);
  dml.encode(enc2);
  Decoder dec2(buf);
  ASSERT_TRUE(LogRecord::decode_into(dec2, &scratch).is_ok());
  EXPECT_EQ(scratch.name, "");  // DDL name did not leak
  EXPECT_EQ(scratch.dml.after, (std::vector<std::uint8_t>{1, 2, 3}));

  buf.clear();
  Encoder enc3(&buf);
  commit.encode(enc3);
  Decoder dec3(buf);
  ASSERT_TRUE(LogRecord::decode_into(dec3, &scratch).is_ok());
  EXPECT_TRUE(scratch.dml.after.empty());  // DML images did not leak
  EXPECT_TRUE(scratch.dml.before.empty());
  EXPECT_EQ(scratch.type, LogRecordType::kCommit);
}

TEST(Framing, SizedParseReportsFramedBytes) {
  std::vector<std::uint8_t> stream;
  LogRecord a;
  a.type = LogRecordType::kCommit;
  a.txn = TxnId{1};
  const std::uint64_t framed_a = frame_record(a, &stream);
  LogRecord b;
  b.type = LogRecordType::kUpdate;
  b.txn = TxnId{2};
  b.dml.before = {1, 2, 3, 4};
  b.dml.after = {1, 9, 3, 4};
  const std::uint64_t framed_b = frame_record(b, &stream);

  std::vector<std::uint64_t> sizes;
  ASSERT_TRUE(parse_records(stream,
                            [&](const LogRecord&, std::uint64_t framed) {
                              sizes.push_back(framed);
                              return true;
                            })
                  .is_ok());
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{framed_a, framed_b}));
  EXPECT_EQ(framed_a + framed_b, stream.size());
}

TEST(Framing, FrameRecordAppendsInPlace) {
  // The arena path: framing into a non-empty buffer must leave earlier
  // bytes untouched and both records parseable.
  std::vector<std::uint8_t> arena;
  LogRecord a;
  a.type = LogRecordType::kCommit;
  a.txn = TxnId{1};
  frame_record(a, &arena);
  const std::vector<std::uint8_t> first = arena;
  LogRecord b;
  b.type = LogRecordType::kCommit;
  b.txn = TxnId{2};
  frame_record(b, &arena);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), arena.begin()));
  std::vector<std::uint64_t> seen;
  ASSERT_TRUE(parse_records(arena, [&](const LogRecord& rec) {
                seen.push_back(rec.txn.value);
                return true;
              }).is_ok());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(Framing, ParseStopsAtTornTail) {
  std::vector<std::uint8_t> stream;
  LogRecord a;
  a.type = LogRecordType::kCommit;
  a.txn = TxnId{1};
  a.lsn = 10;
  frame_record(a, &stream);
  LogRecord b = a;
  b.txn = TxnId{2};
  b.lsn = 20;
  frame_record(b, &stream);
  stream.resize(stream.size() - 3);  // torn tail

  std::vector<std::uint64_t> seen;
  ASSERT_TRUE(parse_records(stream, [&](const LogRecord& rec) {
                seen.push_back(rec.txn.value);
                return true;
              }).is_ok());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1}));
}

TEST(Framing, ParseDetectsCorruptPayload) {
  std::vector<std::uint8_t> stream;
  LogRecord a;
  a.type = LogRecordType::kCommit;
  a.txn = TxnId{1};
  frame_record(a, &stream);
  stream[10] ^= 0xFF;  // flip a payload byte: CRC fails, record dropped
  int seen = 0;
  ASSERT_TRUE(parse_records(stream, [&](const LogRecord&) {
                seen += 1;
                return true;
              }).is_ok());
  EXPECT_EQ(seen, 0);
}

class RedoLogTest : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  sim::Host host_{"h", &clock_};
  int checkpoints_forced_ = 0;
  std::vector<std::uint64_t> finalized_seqs_;

  void SetUp() override {
    host_.add_disk("/redo");
    host_.add_disk("/arch");
  }

  std::unique_ptr<RedoLog> make_log(std::uint64_t file_size,
                                    std::uint32_t groups,
                                    bool archive = false) {
    RedoLogConfig cfg;
    cfg.file_size_bytes = file_size;
    cfg.groups = groups;
    cfg.archive_mode = archive;
    cfg.record_overhead = 64;
    RedoLog::Callbacks cb;
    cb.on_group_finalized = [this](const RedoGroup& g) {
      finalized_seqs_.push_back(g.seq);
      // Simulate the engine's log-switch checkpoint.
      log_->note_recovery_position(log_->next_lsn());
      if (log_->config().archive_mode) {
        (void)archiver_->archive_group(g);
      }
    };
    cb.force_checkpoint = [this] {
      checkpoints_forced_ += 1;
      log_->note_recovery_position(log_->next_lsn());
    };
    auto log = std::make_unique<RedoLog>(&host_.fs(), cfg, std::move(cb));
    log_ = log.get();
    archiver_ = std::make_unique<Archiver>(&host_.fs(), log.get());
    return log;
  }

  LogRecord make_commit(std::uint64_t txn) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn = TxnId{txn};
    return rec;
  }

  RedoLog* log_ = nullptr;
  std::unique_ptr<Archiver> archiver_;
};

TEST_F(RedoLogTest, AppendAssignsIncreasingLsns) {
  auto log = make_log(1 << 20, 3);
  ASSERT_TRUE(log->create().is_ok());
  LogRecord a = make_commit(1), b = make_commit(2);
  const Lsn la = log->append(a);
  const Lsn lb = log->append(b);
  EXPECT_LT(la, lb);
  EXPECT_EQ(a.lsn, la);
  EXPECT_GT(log->pending_bytes(), 0u);
  ASSERT_TRUE(log->flush().is_ok());
  EXPECT_EQ(log->pending_bytes(), 0u);
  EXPECT_EQ(log->flushed_lsn(), log->next_lsn());
}

TEST_F(RedoLogTest, DiscardUnflushedLosesTail) {
  auto log = make_log(1 << 20, 3);
  ASSERT_TRUE(log->create().is_ok());
  LogRecord a = make_commit(1);
  log->append(a);
  ASSERT_TRUE(log->flush().is_ok());
  LogRecord b = make_commit(2);
  log->append(b);
  log->discard_unflushed();

  std::vector<std::uint64_t> seen;
  ASSERT_TRUE(log->read_online(0, [&](const LogRecord& rec) {
                 seen.push_back(rec.txn.value);
                 return true;
               }).is_ok());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1}));
}

TEST_F(RedoLogTest, SwitchesWhenFileFills) {
  auto log = make_log(4096, 3);  // tiny files: frequent switches
  ASSERT_TRUE(log->create().is_ok());
  for (int i = 0; i < 200; ++i) {
    LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
    log->append(rec);
    ASSERT_TRUE(log->flush().is_ok());
  }
  EXPECT_GT(log->switch_count(), 2u);
  EXPECT_FALSE(finalized_seqs_.empty());
  // Sequence numbers increase strictly.
  for (size_t i = 1; i < finalized_seqs_.size(); ++i) {
    EXPECT_EQ(finalized_seqs_[i], finalized_seqs_[i - 1] + 1);
  }
}

TEST_F(RedoLogTest, ReadOnlineReturnsRecordsInOrder) {
  auto log = make_log(4096, 3);
  ASSERT_TRUE(log->create().is_ok());
  std::vector<Lsn> lsns;
  for (int i = 0; i < 60; ++i) {
    LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
    lsns.push_back(log->append(rec));
    ASSERT_TRUE(log->flush().is_ok());
  }
  // Oldest retained lsn: some early records were overwritten by reuse.
  const Lsn oldest = log->oldest_online_lsn();
  EXPECT_GT(oldest, 0u);

  std::vector<Lsn> seen;
  ASSERT_TRUE(log->read_online(oldest, [&](const LogRecord& rec) {
                 seen.push_back(rec.lsn);
                 return true;
               }).is_ok());
  ASSERT_FALSE(seen.empty());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.back(), lsns.back());
}

TEST_F(RedoLogTest, OpenExistingRestoresPosition) {
  Lsn end_before;
  {
    auto log = make_log(8192, 3);
    ASSERT_TRUE(log->create().is_ok());
    for (int i = 0; i < 40; ++i) {
      LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
      log->append(rec);
      ASSERT_TRUE(log->flush().is_ok());
    }
    end_before = log->next_lsn();
  }
  auto log = make_log(8192, 3);
  ASSERT_TRUE(log->open_existing().is_ok());
  EXPECT_EQ(log->next_lsn(), end_before);
  // Appending continues without clobbering old records.
  LogRecord rec = make_commit(999);
  const Lsn lsn = log->append(rec);
  EXPECT_GE(lsn, end_before);
  ASSERT_TRUE(log->flush().is_ok());
  bool found = false;
  ASSERT_TRUE(log->read_online(lsn, [&](const LogRecord& r) {
                 found = r.txn.value == 999;
                 return true;
               }).is_ok());
  EXPECT_TRUE(found);
}

TEST_F(RedoLogTest, ForceCheckpointWhenReuseBlocked) {
  auto log = make_log(4096, 2);
  ASSERT_TRUE(log->create().is_ok());
  // Never tell the log the checkpoint advanced except through the forced
  // callback; switches must then force checkpoints.
  for (int i = 0; i < 100; ++i) {
    LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
    log->append(rec);
    ASSERT_TRUE(log->flush().is_ok());
  }
  EXPECT_GT(log->switch_count(), 0u);
}

TEST_F(RedoLogTest, ArchiveModeProducesArchives) {
  auto log = make_log(4096, 3, /*archive=*/true);
  ASSERT_TRUE(log->create().is_ok());
  for (int i = 0; i < 100; ++i) {
    LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
    log->append(rec);
    ASSERT_TRUE(log->flush().is_ok());
  }
  const auto archives = host_.fs().list("/arch/arch_");
  EXPECT_EQ(archives.size(), archiver_->archived_count());
  EXPECT_GT(archives.size(), 1u);
  // Archive content parses and covers the finalized sequence.
  auto bytes = host_.fs().read_all(archives[0], sim::IoMode::kBackground);
  ASSERT_TRUE(bytes.is_ok());
  int records = 0;
  ASSERT_TRUE(parse_records(
                  std::span<const std::uint8_t>(bytes.value()).subspan(20),
                  [&](const LogRecord&) {
                    records += 1;
                    return true;
                  })
                  .is_ok());
  EXPECT_GT(records, 0);
}

TEST_F(RedoLogTest, ResetlogsStartsFreshAboveOldLsns) {
  auto log = make_log(8192, 3);
  ASSERT_TRUE(log->create().is_ok());
  for (int i = 0; i < 30; ++i) {
    LogRecord rec = make_commit(static_cast<std::uint64_t>(i));
    log->append(rec);
    ASSERT_TRUE(log->flush().is_ok());
  }
  const Lsn reset_at = log->next_lsn() + 1000;
  ASSERT_TRUE(log->resetlogs(reset_at).is_ok());
  EXPECT_GE(log->next_lsn(), reset_at);
  int count = 0;
  ASSERT_TRUE(log->read_online(0, [&](const LogRecord&) {
                 count += 1;
                 return true;
               }).is_ok());
  EXPECT_EQ(count, 0);  // all groups empty
  LogRecord rec = make_commit(1);
  EXPECT_GE(log->append(rec), reset_at);
  ASSERT_TRUE(log->flush().is_ok());
}

TEST_F(RedoLogTest, GroupCommitBatchesAndPiggybacks) {
  auto log = make_log(1 << 20, 3);
  ASSERT_TRUE(log->create().is_ok());

  // Several transactions' records accumulate in the arena; the first
  // commit_flush drains them all as one batch.
  LogRecord a = make_commit(1);
  const Lsn la = log->append(a);
  LogRecord b = make_commit(2);
  const Lsn lb = log->append(b);
  LogRecord c = make_commit(3);
  log->append(c);
  ASSERT_TRUE(log->commit_flush(la).is_ok());
  const auto& gc = log->group_commit_stats();
  EXPECT_EQ(gc.commit_requests, 1u);
  EXPECT_EQ(gc.piggybacked, 0u);
  EXPECT_GE(gc.flushes, 1u);
  EXPECT_GE(gc.batched_commits, 3u);  // one write carried all three commits
  EXPECT_GE(gc.max_commits_per_flush, 3u);
  EXPECT_EQ(log->pending_bytes(), 0u);

  // A commit already made durable by that batch piggybacks: no extra write.
  const std::uint64_t flushes_before = log->group_commit_stats().flushes;
  ASSERT_TRUE(log->commit_flush(lb).is_ok());
  EXPECT_EQ(log->group_commit_stats().piggybacked, 1u);
  EXPECT_EQ(log->group_commit_stats().flushes, flushes_before);
}

TEST_F(RedoLogTest, ArenaSurvivesInterleavedAppendFlushCycles) {
  // Steady-state arena reuse: append/flush cycles must keep records intact
  // and readable across group switches.
  auto log = make_log(4096, 3);
  ASSERT_TRUE(log->create().is_ok());
  std::vector<Lsn> lsns;
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      LogRecord rec = make_commit(static_cast<std::uint64_t>(cycle * 3 + i));
      lsns.push_back(log->append(rec));
    }
    ASSERT_TRUE(log->flush().is_ok());
  }
  std::vector<std::uint64_t> seen;
  ASSERT_TRUE(log->read_online(log->oldest_online_lsn(),
                               [&](const LogRecord& rec) {
                                 seen.push_back(rec.txn.value);
                                 return true;
                               })
                  .is_ok());
  ASSERT_FALSE(seen.empty());
  // The retained suffix is contiguous and ends at the last append.
  EXPECT_EQ(seen.back(), 89u);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  }
}

TEST_F(RedoLogTest, FlushToIsIdempotent) {
  auto log = make_log(1 << 20, 3);
  ASSERT_TRUE(log->create().is_ok());
  LogRecord rec = make_commit(1);
  const Lsn lsn = log->append(rec);
  ASSERT_TRUE(log->flush_to(lsn).is_ok());
  EXPECT_GT(log->flushed_lsn(), lsn);
  ASSERT_TRUE(log->flush_to(lsn).is_ok());  // already durable: no-op
}

TEST_F(RedoLogTest, RequiresTwoGroups) {
  RedoLogConfig cfg;
  cfg.groups = 2;
  RedoLog ok(&host_.fs(), cfg, {});
  EXPECT_DEATH(
      {
        RedoLogConfig bad;
        bad.groups = 1;
        RedoLog nope(&host_.fs(), bad, {});
      },
      "two redo groups");
}

}  // namespace
}  // namespace vdb::wal
